"""Unit tests for memory ledgers, timelines and reports."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.memory import MemoryLedger
from repro.metrics.report import MetricReport, summarize
from repro.metrics.timeline import OverlapLedger, Timeline


class TestMemoryLedger:
    def test_charge_and_total(self):
        ledger = MemoryLedger()
        ledger.charge("buffer", 100)
        ledger.charge("buffer", 50)
        assert ledger.total_bytes() == 150
        assert ledger.live_bytes("buffer") == 150

    def test_release_partial(self):
        ledger = MemoryLedger()
        ledger.charge("buffer", 100)
        ledger.release("buffer", 40)
        assert ledger.total_bytes() == 60

    def test_release_clamps_to_zero(self):
        ledger = MemoryLedger()
        ledger.charge("buffer", 10)
        ledger.release("buffer", 100)
        assert ledger.total_bytes() == 0

    def test_negative_charge_rejected(self):
        ledger = MemoryLedger()
        with pytest.raises(ValueError):
            ledger.charge("buffer", -1)

    def test_negative_release_rejected(self):
        ledger = MemoryLedger()
        with pytest.raises(ValueError):
            ledger.release("buffer", -1)

    def test_peak_tracking(self):
        ledger = MemoryLedger()
        ledger.charge("a", 100)
        ledger.release("a", 100)
        ledger.charge("a", 30)
        assert ledger.peak_bytes() >= 100
        assert ledger.total_bytes() == 30

    def test_hierarchical_adoption(self):
        parent = MemoryLedger(name="node")
        child = MemoryLedger(name="actor")
        parent.adopt(child)
        child.charge("x", 42)
        assert parent.total_bytes() == 42

    def test_disown_removes_child(self):
        parent = MemoryLedger()
        child = MemoryLedger()
        parent.adopt(child)
        child.charge("x", 10)
        parent.disown(child)
        assert parent.total_bytes() == 0

    def test_disown_unknown_child_is_noop(self):
        parent = MemoryLedger()
        parent.disown(MemoryLedger())

    def test_snapshot_merges_categories(self):
        parent = MemoryLedger()
        child = MemoryLedger()
        parent.adopt(child)
        parent.charge("a", 10)
        child.charge("a", 5)
        child.charge("b", 1)
        snapshot = parent.snapshot()
        assert snapshot.category("a") == 15
        assert snapshot.category("b") == 1
        assert snapshot.total_bytes == 16

    def test_snapshot_fraction(self):
        ledger = MemoryLedger()
        ledger.charge("a", 75)
        ledger.charge("b", 25)
        assert ledger.snapshot().fraction("a") == pytest.approx(0.75)

    def test_release_all_category(self):
        ledger = MemoryLedger()
        ledger.charge("a", 10)
        ledger.charge("b", 5)
        ledger.release_all("a")
        assert ledger.total_bytes() == 5

    def test_release_all(self):
        ledger = MemoryLedger()
        ledger.charge("a", 10)
        ledger.release_all()
        assert ledger.total_bytes() == 0


class TestTimeline:
    def test_record_and_filter(self):
        timeline = Timeline()
        timeline.record("planner", "gather", 0.0, 1.0)
        timeline.record("loader", "prepare", 1.0, 2.0)
        assert len(timeline) == 2
        assert len(timeline.events(component="planner")) == 1
        assert len(timeline.events(name="prepare")) == 1

    def test_negative_duration_rejected(self):
        timeline = Timeline()
        with pytest.raises(ValueError):
            timeline.record("x", "y", 0.0, -1.0)

    def test_total_duration(self):
        timeline = Timeline()
        timeline.record("a", "x", 0.0, 1.5)
        timeline.record("a", "y", 2.0, 0.5)
        assert timeline.total_duration(component="a") == pytest.approx(2.0)

    def test_span_is_latest_end(self):
        timeline = Timeline()
        timeline.record("a", "x", 0.0, 1.0)
        timeline.record("b", "y", 5.0, 2.0)
        assert timeline.span() == pytest.approx(7.0)

    def test_empty_span_is_zero(self):
        assert Timeline().span() == 0.0

    def test_breakdown_by_component(self):
        timeline = Timeline()
        timeline.record("a", "x", 0.0, 1.0)
        timeline.record("a", "y", 0.0, 2.0)
        timeline.record("b", "z", 0.0, 4.0)
        breakdown = timeline.breakdown()
        assert breakdown["a"] == pytest.approx(3.0)
        assert breakdown["b"] == pytest.approx(4.0)

    def test_merge(self):
        a = Timeline()
        b = Timeline()
        a.record("a", "x", 0.0, 1.0)
        b.record("b", "y", 0.0, 1.0)
        a.merge(b)
        assert len(a) == 2

    def test_event_metadata_preserved(self):
        timeline = Timeline()
        event = timeline.record("a", "x", 0.0, 1.0, microbatch=3)
        assert event.metadata["microbatch"] == 3
        assert event.end == pytest.approx(1.0)


class TestMetricReport:
    def test_add_row_and_column(self):
        report = MetricReport(title="t", columns=["name", "value"])
        report.add_row("a", 1.0)
        report.add_row("b", 2.0)
        assert report.column("value") == [1.0, 2.0]

    def test_row_arity_checked(self):
        report = MetricReport(title="t", columns=["a", "b"])
        with pytest.raises(ValueError):
            report.add_row(1)

    def test_to_text_contains_title_and_values(self):
        report = MetricReport(title="Fig X", columns=["metric", "value"])
        report.add_row("speedup", 4.5)
        text = report.to_text()
        assert "Fig X" in text
        assert "speedup" in text
        assert "4.500" in text

    def test_summarize_basic_stats(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats["mean"] == pytest.approx(2.5)
        assert stats["min"] == 1.0
        assert stats["max"] == 4.0

    def test_summarize_empty(self):
        stats = summarize([])
        assert stats["mean"] == 0.0
        assert stats["p95"] == 0.0


class TestOverlapLedger:
    def test_record_and_totals(self):
        ledger = OverlapLedger()
        ledger.record(step=0, fetch_s=2.0, hidden_s=0.0)
        ledger.record(step=1, fetch_s=3.0, hidden_s=3.0)
        ledger.record(step=2, fetch_s=1.0, hidden_s=0.5)
        assert len(ledger) == 3
        assert ledger.fetch_total_s() == pytest.approx(6.0)
        assert ledger.hidden_total_s() == pytest.approx(3.5)
        assert ledger.exposed_total_s() == pytest.approx(2.5)
        assert ledger.hidden_fraction() == pytest.approx(3.5 / 6.0)

    def test_hidden_clamped_to_fetch(self):
        ledger = OverlapLedger()
        entry = ledger.record(step=0, fetch_s=1.0, hidden_s=5.0)
        assert entry.hidden_s == pytest.approx(1.0)
        assert entry.exposed_s == 0.0
        negative = ledger.record(step=1, fetch_s=1.0, hidden_s=-2.0)
        assert negative.hidden_s == 0.0
        assert negative.exposed_s == pytest.approx(1.0)

    def test_negative_fetch_rejected(self):
        ledger = OverlapLedger()
        with pytest.raises(ValueError):
            ledger.record(step=0, fetch_s=-1.0, hidden_s=0.0)

    def test_empty_ledger_fraction_zero(self):
        assert OverlapLedger().hidden_fraction() == 0.0

    def test_stall_defaults_to_exposed_and_totals(self):
        ledger = OverlapLedger()
        ledger.record(step=0, fetch_s=2.0, hidden_s=1.5)
        entry = ledger.record(step=1, fetch_s=1.0, hidden_s=0.0, stall_s=3.0)
        assert ledger.records()[0].stall_s == pytest.approx(0.5)
        # A measured stall may exceed the step's own fetch latency (the step
        # queued behind earlier data-plane work).
        assert entry.stall_s == pytest.approx(3.0)
        assert ledger.stall_total_s() == pytest.approx(3.5)


class TestOverlapLedgerFromTimeline:
    def make_timeline(self):
        timeline = Timeline()
        # Trainer compute windows [1, 2] and [3, 4].
        timeline.record("trainer", "train_step", 1.0, 1.0, role="trainer", step=0)
        timeline.record("trainer", "train_step", 3.0, 1.0, role="trainer", step=1)
        # Step-1 data work: half of [0.5, 1.5] overlaps the first window,
        # all of [3.2, 3.4] falls inside the second.
        timeline.record("loader/a", "poll", 0.5, 1.0, role="source_loader", step=1)
        timeline.record("constructor/0", "construct", 3.2, 0.2, role="data_constructor", step=1)
        # Untagged sync work and unknown roles are excluded.
        timeline.record("loader/a", "prepare", 0.0, 9.0, role="source_loader")
        timeline.record("oracle", "noise", 0.0, 9.0, role="oracle", step=1)
        return timeline

    def test_measures_interval_overlap_per_step(self):
        ledger = OverlapLedger.from_timeline(self.make_timeline())
        assert len(ledger) == 1
        entry = ledger.records()[0]
        assert entry.step == 1
        assert entry.fetch_s == pytest.approx(1.2)
        assert entry.hidden_s == pytest.approx(0.7)
        assert entry.exposed_s == pytest.approx(0.5)

    def test_empty_timeline_gives_empty_ledger(self):
        assert len(OverlapLedger.from_timeline(Timeline())) == 0


class TestBoundedTimeline:
    def test_bounded_mode_keeps_aggregates_exact(self):
        timeline = Timeline(max_events=2)
        for index in range(5):
            timeline.record("c", "x", float(index), 1.0)
        assert len(timeline) == 5
        assert timeline.dropped_events == 3
        assert len(timeline.events()) == 2
        assert timeline.span() == pytest.approx(5.0)
        assert timeline.breakdown()["c"] == pytest.approx(5.0)
        assert timeline.total_duration(component="c", name="x") == pytest.approx(5.0)

    def test_unbounded_mode_drops_nothing(self):
        timeline = Timeline()
        timeline.record("c", "x", 0.0, 1.0)
        assert timeline.dropped_events == 0
        assert timeline.max_events is None

    def test_invalid_max_events_rejected(self):
        with pytest.raises(ValueError):
            Timeline(max_events=0)

    def test_merge_folds_evicted_aggregates(self):
        source = Timeline(max_events=1)
        source.record("c", "x", 0.0, 1.0)
        source.record("c", "y", 1.0, 1.5)  # evicts the first event
        destination = Timeline()
        destination.merge(source)
        assert len(destination) == 2
        assert destination.total_duration(component="c") == pytest.approx(2.5)
        assert destination.total_duration(component="c", name="x") == pytest.approx(1.0)
        assert destination.span() == pytest.approx(2.5)


def _record_reference_workload(timeline: Timeline) -> None:
    """The TestOverlapLedgerFromTimeline workload, reused for the aggregate."""
    timeline.record("trainer", "train_step", 1.0, 1.0, role="trainer", step=0)
    timeline.record("trainer", "train_step", 3.0, 1.0, role="trainer", step=1)
    timeline.record("loader/a", "poll", 0.5, 1.0, role="source_loader", step=1)
    timeline.record("constructor/0", "construct", 3.2, 0.2, role="data_constructor", step=1)
    timeline.record("loader/a", "prepare", 0.0, 9.0, role="source_loader")
    timeline.record("oracle", "noise", 0.0, 9.0, role="oracle", step=1)
    timeline.record("trainer", "consume_step", 4.0, 5.0, role="trainer", step=2)


class TestOverlapAggregator:
    def _ledgers(self, workload) -> tuple[OverlapLedger, OverlapLedger]:
        full = Timeline()
        aggregated = Timeline(max_events=1, aggregate_overlap=True)
        workload(full)
        workload(aggregated)
        assert aggregated.overlap_aggregator is not None
        return OverlapLedger.from_timeline(full), OverlapLedger.from_timeline(aggregated)

    @staticmethod
    def _assert_ledgers_match(reference: OverlapLedger, aggregated: OverlapLedger):
        assert [entry.step for entry in aggregated.records()] == [
            entry.step for entry in reference.records()
        ]
        for ref, agg in zip(reference.records(), aggregated.records()):
            assert agg.fetch_s == pytest.approx(ref.fetch_s, abs=1e-12)
            assert agg.hidden_s == pytest.approx(ref.hidden_s, abs=1e-12)

    def test_aggregate_matches_reference_workload(self):
        reference, aggregated = self._ledgers(_record_reference_workload)
        self._assert_ledgers_match(reference, aggregated)
        entry = aggregated.records()[0]
        assert entry.step == 1
        assert entry.fetch_s == pytest.approx(1.2)
        assert entry.hidden_s == pytest.approx(0.7)

    def test_out_of_order_merged_windows_fall_back_to_events(self):
        """A merge can replay trainer windows below the watermark; with the
        events still retained, from_timeline must prefer the exact rebuild."""
        destination = Timeline(aggregate_overlap=True)
        destination.record("trainer", "train_step", 10.0, 1.0, role="trainer")
        destination.record("loader/a", "poll", 0.0, 1.0, role="source_loader", step=0)
        source = Timeline()
        source.record("trainer", "train_step", 0.0, 5.0, role="trainer")
        destination.merge(source)
        assert not destination.overlap_aggregator.exact
        ledger = OverlapLedger.from_timeline(destination)
        assert ledger.records()[0].hidden_s == pytest.approx(1.0)

    def test_custom_classification_bypasses_the_aggregate(self):
        """from_timeline args that differ from the aggregator's config win."""
        timeline = Timeline(aggregate_overlap=True)
        _record_reference_workload(timeline)
        custom = OverlapLedger.from_timeline(timeline, data_roles=frozenset())
        # No data-plane roles under the custom classification: empty ledger.
        assert len(custom) == 0
        default = OverlapLedger.from_timeline(timeline)
        assert default.hidden_total_s() == pytest.approx(0.7)

    @given(
        windows=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=2.0),  # gap before the window
                st.floats(min_value=0.0, max_value=2.0),  # window duration
            ),
            max_size=6,
        ),
        events=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=6),  # recorded before window i
                st.floats(min_value=0.0, max_value=10.0),  # start (may lag windows)
                st.floats(min_value=0.0, max_value=3.0),  # duration
                st.integers(min_value=0, max_value=3),  # step
            ),
            max_size=12,
        ),
    )
    @settings(max_examples=120, deadline=None)
    def test_aggregate_matches_reference_on_random_workloads(self, windows, events):
        """Online aggregation == full-event rebuild for any interleaving.

        Trainer windows are recorded with non-decreasing starts (they come
        from one serialized actor); data events may start arbitrarily far in
        the past relative to the window watermark.
        """

        def workload(timeline: Timeline) -> None:
            cursor = 0.0
            for index, (gap, duration) in enumerate(windows + [(0.0, 0.0)]):
                for position, start, event_duration, step in events:
                    if position == index:
                        timeline.record(
                            "loader/a", "poll", start, event_duration,
                            role="source_loader", step=step,
                        )
                if index < len(windows):
                    cursor += gap
                    timeline.record(
                        "trainer", "train_step", cursor, duration, role="trainer"
                    )
                    cursor += duration

        reference, aggregated = self._ledgers(workload)
        self._assert_ledgers_match(reference, aggregated)


class TestFleetEvents:
    """The overlap ledger's elasticity section (loader fleet telemetry)."""

    def test_record_and_summarize(self):
        ledger = OverlapLedger()
        ledger.record_fleet_event("spawn", 2, 1.5, "src-a", "loader/src-a/0m1", node="accel-0")
        ledger.record_fleet_event("spawn", 4, 2.5, "src-b", "loader/src-b/0m2", node="accel-1")
        ledger.record_fleet_event("retire", 9, 5.0, "src-a", "loader/src-a/0m1", node="accel-0")
        ledger.record_fleet_event("reject", 11, 6.0, "src-b", "loader/src-b/0m3",
                                  detail="no node can host")
        assert len(ledger.fleet_events()) == 4
        assert [e.actor for e in ledger.fleet_events("spawn")] == [
            "loader/src-a/0m1", "loader/src-b/0m2",
        ]
        ledger.record_fleet_event("resize", 12, 6.5, "src-a", "loader/src-a/0",
                                  detail="workers 2 -> 4")
        ledger.record_fleet_event("promote", 13, 7.0, "src-b", "loader/src-b/0m4")
        summary = ledger.elasticity_summary()
        assert summary == {
            "fleet_spawns": 2.0,
            "fleet_retires": 1.0,
            "fleet_rejections": 1.0,
            "fleet_resizes": 1.0,
            "fleet_promotions": 1.0,
            "fleet_net_delta": 1.0,
        }

    def test_unknown_kind_rejected(self):
        ledger = OverlapLedger()
        with pytest.raises(ValueError):
            ledger.record_fleet_event("explode", 0, 0.0, "src", "actor")

    def test_fleet_role_excluded_from_overlap_accounting(self):
        """Fleet markers on the system timeline are neither data-plane busy
        time nor trainer compute: the rebuilt ledger ignores them even when
        they carry a step tag."""
        from repro.metrics.timeline import FLEET_ROLE

        def workload(timeline: Timeline) -> None:
            timeline.record("trainer", "train_step", 0.0, 2.0, role="trainer")
            timeline.record("loader/a", "poll", 1.0, 2.0, role="source_loader", step=0)
            timeline.record("loader/a/0m1", "spawn", 1.5, 0.0, role=FLEET_ROLE, step=0)
            timeline.record("loader/a/0m1", "retire", 2.5, 0.0, role=FLEET_ROLE, step=1)

        plain = Timeline()
        workload(plain)
        rebuilt = OverlapLedger.from_timeline(plain)
        records = rebuilt.records()
        assert len(records) == 1
        assert records[0].fetch_s == pytest.approx(2.0)
        assert records[0].hidden_s == pytest.approx(1.0)
        # The aggregating (bounded-telemetry) path ignores them identically.
        aggregating = Timeline(max_events=1, aggregate_overlap=True)
        workload(aggregating)
        from_aggregate = OverlapLedger.from_timeline(aggregating)
        assert from_aggregate.records()[0].fetch_s == records[0].fetch_s
        assert from_aggregate.records()[0].hidden_s == records[0].hidden_s


class TestClusterUtilizationTracker:
    def test_summary_over_samples(self):
        from repro.metrics.report import ClusterUtilizationTracker

        tracker = ClusterUtilizationTracker()
        tracker.observe(0, {"n0": {"cpu": 0.2, "memory": 0.1}, "n1": {"cpu": 0.4, "memory": 0.3}})
        tracker.observe(1, {"n0": {"cpu": 0.6, "memory": 0.5}, "n1": {"cpu": 0.2, "memory": 0.1}})
        summary = tracker.summary()
        assert summary["utilization_samples"] == 2.0
        assert summary["peak_node_cpu_utilization"] == pytest.approx(0.6)
        assert summary["peak_node_memory_utilization"] == pytest.approx(0.5)
        assert summary["mean_node_cpu_utilization"] == pytest.approx((0.3 + 0.4) / 2)
        assert summary["mean_node_memory_utilization"] == pytest.approx((0.2 + 0.3) / 2)
        assert len(tracker.samples()) == 2

    def test_empty_tracker_reports_zeros(self):
        from repro.metrics.report import ClusterUtilizationTracker

        summary = ClusterUtilizationTracker().summary()
        assert summary["utilization_samples"] == 0.0
        assert summary["peak_node_cpu_utilization"] == 0.0
