"""Unit tests for the hybrid-parallel device mesh."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.parallelism.mesh import DeviceMesh, ParallelDims


class TestParallelDims:
    def test_world_size(self):
        assert ParallelDims(pp=2, dp=3, cp=2, tp=4).world_size == 48

    def test_invalid_dims(self):
        with pytest.raises(ConfigurationError):
            ParallelDims(pp=0)


class TestDeviceMesh:
    def test_world_size_and_nodes(self):
        mesh = DeviceMesh(pp=2, dp=2, cp=2, tp=2, gpus_per_node=8)
        assert mesh.world_size == 16
        assert mesh.num_nodes == 2

    def test_coordinate_round_trip(self):
        mesh = DeviceMesh(pp=2, dp=2, cp=2, tp=2)
        for rank in range(mesh.world_size):
            coord = mesh.coordinate(rank)
            assert coord.rank == rank
            assert mesh.ranks_where(pp=coord.pp, dp=coord.dp, cp=coord.cp, tp=coord.tp) == [rank]

    def test_tp_is_innermost(self):
        mesh = DeviceMesh(pp=1, dp=1, cp=1, tp=4)
        assert [mesh.coordinate(r).tp for r in range(4)] == [0, 1, 2, 3]

    def test_out_of_range_rank(self):
        with pytest.raises(ConfigurationError):
            DeviceMesh(dp=2).coordinate(2)

    def test_invalid_gpus_per_node(self):
        with pytest.raises(ConfigurationError):
            DeviceMesh(gpus_per_node=0)

    def test_node_of_rank(self):
        mesh = DeviceMesh(pp=1, dp=4, cp=1, tp=4, gpus_per_node=8)
        assert mesh.node_of_rank(0) == 0
        assert mesh.node_of_rank(15) == 1


class TestGroups:
    def test_group_of_tp(self):
        mesh = DeviceMesh(pp=1, dp=2, cp=1, tp=4)
        group = mesh.group_of(rank=1, axis="TP")
        assert group == [0, 1, 2, 3]

    def test_group_of_dp(self):
        mesh = DeviceMesh(pp=1, dp=2, cp=1, tp=2)
        group = mesh.group_of(rank=0, axis="DP")
        assert len(group) == 2
        assert all(mesh.coordinate(r).tp == 0 for r in group)

    def test_group_sizes_match_axis(self, vlm_mesh):
        for axis in ("PP", "DP", "CP", "TP"):
            group = vlm_mesh.group_of(0, axis)
            assert len(group) == vlm_mesh.size(axis)

    def test_data_consumers_dp(self):
        mesh = DeviceMesh(pp=2, dp=2, cp=2, tp=2)
        groups = mesh.data_consumers("DP")
        assert len(groups) == 2
        assert sum(len(g) for g in groups) == mesh.world_size

    def test_data_consumers_cp(self):
        mesh = DeviceMesh(pp=1, dp=2, cp=2, tp=2)
        groups = mesh.data_consumers("CP")
        assert len(groups) == 4

    def test_data_consumers_world(self):
        mesh = DeviceMesh(pp=1, dp=2, cp=2, tp=1)
        groups = mesh.data_consumers("WORLD")
        assert len(groups) == 4
        assert all(len(g) == 1 for g in groups)

    def test_unknown_axis(self):
        with pytest.raises(ConfigurationError):
            DeviceMesh().data_consumers("EP")

    def test_describe_mentions_all_dims(self, vlm_mesh):
        text = vlm_mesh.describe()
        for token in ("PP=2", "DP=2", "CP=2", "TP=2"):
            assert token in text
