"""Columnar batch assembly: byte-identity vs the legacy path, staging, hand-off.

The ``assembly="columnar"`` twin must be indistinguishable from the legacy
object path everywhere it can be observed: collated microbatches, bin
assignments, RoPE positions, per-rank deliveries, end-to-end runs across
prefetch depths and mid-run elasticity.  These tests pin that, plus the
zero-copy mechanics (GCS reference identity) and the delivered-batch
manifest audit trail.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.actors.gcs import GlobalControlStore
from repro.actors.runtime import ActorSystem, ClusterSpec
from repro.core.assembly import PreparedColumns, StagedColumns
from repro.core.checkpoint import InMemoryCheckpointStore, SqliteCheckpointStore
from repro.core.data_constructor import DataConstructor
from repro.core.framework import MANIFEST_NAMESPACE, MegaScaleData, TrainingJobSpec
from repro.core.plans import MicrobatchAssignment, ModulePlan
from repro.core.source_loader import SourceLoader
from repro.data.samples import Modality, SampleMetadata
from repro.errors import ConfigurationError, PlanError, TransformError
from repro.parallelism.mesh import DeviceMesh
from repro.transforms.microbatch import (
    Microbatch,
    PackingCollator,
    collate_columns_with_positions,
    collate_with_positions,
    first_fit_bin_indices,
)
from repro.utils.units import GIB


def meta(sample_id: int, text_tokens: int, image_tokens: int = 0) -> SampleMetadata:
    return SampleMetadata(
        sample_id=sample_id,
        source="src",
        modality=Modality.TEXT,
        text_tokens=text_tokens,
        image_tokens=image_tokens,
        raw_bytes=4 * (text_tokens + image_tokens),
    )


def assert_collated_equal(a, b) -> None:
    assert a.index == b.index
    assert a.collation == b.collation
    assert a.max_sequence_length == b.max_sequence_length
    assert a.sample_ids == b.sample_ids
    assert len(a.sequences) == len(b.sequences)
    for sa, sb in zip(a.sequences, b.sequences):
        assert sa.tokens == sb.tokens
        assert sa.padding == sb.padding
        assert sa.segments == sb.segments
        # Byte-identity includes the *types*: numpy ints sneaking into
        # segment tuples would change pickled payloads.
        assert all(type(x) is int for seg in sb.segments for x in seg)
    assert a.position_ids.dtype == b.position_ids.dtype == np.int32
    assert np.array_equal(a.position_ids, b.position_ids)
    assert a.total_tokens() == b.total_tokens()
    assert a.padding_tokens() == b.padding_tokens()


# -- collation kernels ------------------------------------------------------------------


lengths_lists = st.lists(st.integers(min_value=0, max_value=1200), max_size=48)


class TestCollationEquivalence:
    @given(lengths=lengths_lists, max_len=st.sampled_from([1, 8, 96, 640]))
    @settings(max_examples=120, deadline=None)
    def test_packed_collation_byte_identical(self, lengths, max_len):
        metas = [meta(3 * i + 1, n) for i, n in enumerate(lengths)]
        legacy = collate_with_positions(
            Microbatch(index=2, samples=list(metas)), max_len, packing=True
        )
        columnar = collate_columns_with_positions(
            2,
            [m.sample_id for m in metas],
            np.array([m.total_tokens for m in metas], dtype=np.int64),
            max_len,
            packing=True,
        )
        assert_collated_equal(legacy, columnar)

    @given(lengths=lengths_lists, max_len=st.sampled_from([1, 8, 96, 640]))
    @settings(max_examples=120, deadline=None)
    def test_padded_collation_byte_identical(self, lengths, max_len):
        metas = [meta(3 * i + 1, n) for i, n in enumerate(lengths)]
        legacy = collate_with_positions(
            Microbatch(index=0, samples=list(metas)), max_len, packing=False
        )
        columnar = collate_columns_with_positions(
            0,
            [m.sample_id for m in metas],
            np.array([m.total_tokens for m in metas], dtype=np.int64),
            max_len,
            packing=False,
        )
        assert_collated_equal(legacy, columnar)

    @given(lengths=lengths_lists, capacity=st.integers(min_value=1, max_value=512))
    @settings(max_examples=120, deadline=None)
    def test_first_fit_matches_reference_scan(self, lengths, capacity):
        arr = np.array(lengths, dtype=np.int64)
        fast = first_fit_bin_indices(arr, capacity)
        residuals: list[int] = []
        expected = []
        for length in lengths:
            length = min(length, capacity)
            for index, residual in enumerate(residuals):
                if residual >= length:
                    residuals[index] -= length
                    expected.append(index)
                    break
            else:
                residuals.append(capacity - length)
                expected.append(len(residuals) - 1)
        assert fast.tolist() == expected

    # The degenerate corners the sweep never hits: empty microbatches,
    # all-overflow samples, single-sample batches.
    @given(
        packing=st.booleans(),
        corner=st.sampled_from(["empty", "all_overflow", "single"]),
        max_len=st.integers(min_value=1, max_value=64),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=80, deadline=None)
    def test_degenerate_corners_invariant_across_modes(self, packing, corner, max_len, seed):
        if corner == "empty":
            metas = []
        elif corner == "all_overflow":
            metas = [meta(i + 1, max_len + 1 + (seed + i) % 7) for i in range(4)]
        else:
            metas = [meta(seed + 1, seed % (2 * max_len + 1))]
        legacy = collate_with_positions(
            Microbatch(index=1, samples=list(metas)), max_len, packing=packing
        )
        columnar = collate_columns_with_positions(
            1,
            [m.sample_id for m in metas],
            np.array([m.total_tokens for m in metas], dtype=np.int64),
            max_len,
            packing=packing,
        )
        assert_collated_equal(legacy, columnar)
        if packing and corner == "all_overflow":
            # Every clipped sample fills a whole bin: assignments are 0..n-1.
            assert [len(seq.segments) for seq in columnar.sequences] == [1] * len(metas)

    def test_columnar_strict_overflow_matches_legacy_error(self):
        metas = [meta(9, 100)]
        with pytest.raises(TransformError) as legacy_err:
            PackingCollator(64, allow_overflow=False).collate(
                Microbatch(index=0, samples=metas)
            )
        with pytest.raises(TransformError) as columnar_err:
            collate_columns_with_positions(
                0, [9], np.array([100]), 64, packing=True, allow_overflow=False
            )
        assert str(legacy_err.value) == str(columnar_err.value)


# -- staging store ----------------------------------------------------------------------


class TestStagedColumns:
    def test_take_returns_rows_in_requested_order(self):
        staged = StagedColumns()
        for sample_id in (5, 3, 9, 7):
            staged.append(meta(sample_id, 10 * sample_id), 40 * sample_id, 0.5, [])
        columns, released = staged.take([9, 5])
        assert columns.sample_ids.tolist() == [9, 5]
        assert columns.total_tokens.tolist() == [90, 50]
        assert released == 40 * 9 + 40 * 5
        assert len(staged) == 2
        assert 9 not in staged and 3 in staged

    def test_take_missing_raises(self):
        staged = StagedColumns()
        staged.append(meta(1, 8), 32, 0.1, [])
        with pytest.raises(PlanError, match="no staged sample 2"):
            staged.take([2])

    def test_drop_and_drop_all_release_bytes(self):
        staged = StagedColumns()
        for sample_id in range(1, 6):
            staged.append(meta(sample_id, 4), 100, 0.1, [])
        dropped, released = staged.drop([2, 4, 99])
        assert (dropped, released) == (2, 200)
        assert staged.drop_all() == 300
        assert len(staged) == 0

    def test_compaction_preserves_contents(self):
        staged = StagedColumns()
        for sample_id in range(200):
            staged.append(meta(sample_id, sample_id + 1), 8, 0.1, [])
        staged.take(list(range(0, 200, 2)))  # tombstone half -> compaction
        columns, _ = staged.take([151, 3])
        assert columns.sample_ids.tolist() == [151, 3]
        assert columns.total_tokens.tolist() == [152, 4]

    def test_prepared_columns_lookup_reports_missing(self):
        staged = StagedColumns()
        for sample_id in (4, 8, 2):
            staged.append(meta(sample_id, 16), 64, 0.1, [])
        columns, _ = staged.take([4, 8, 2])
        rows, missing = columns.lookup([8, 6, 2])
        assert missing == [6]
        assert columns.sample_ids[rows].tolist() == [8, 2]


# -- loader staging + GCS hand-off ------------------------------------------------------


@pytest.fixture()
def system():
    return ActorSystem(ClusterSpec(accelerator_nodes=1, cpu_pods=1))


def spawn_loader(system, catalog, filesystem, **kwargs):
    source = catalog.sources()[0]
    unique = len(system.list_actor_names())
    return system.create_actor(
        lambda: SourceLoader(source, filesystem, **kwargs),
        name=f"loader-col-{unique}",
        memory_bytes=GIB,
    )


class TestColumnarLoader:
    def test_fetch_prepared_ref_is_zero_copy(self, system, small_catalog, filesystem):
        handle = spawn_loader(
            system, small_catalog, filesystem, buffer_size=16, assembly="columnar"
        )
        loader = handle.instance()
        sample_ids = [m.sample_id for m in loader.summary_buffer()[:4]]
        handle.call("prepare", sample_ids)
        assert loader.staged_count() == 4
        ref = handle.call("fetch_prepared_ref", sample_ids)
        assert ref["count"] == 4
        # The GCS serves the frozen columns BY REFERENCE: the exact object
        # the loader published, not a copy — and take() removes the key.
        resolved = system.gcs.take(ref["key"])
        assert isinstance(resolved, PreparedColumns)
        assert resolved.sample_ids.tolist() == sample_ids
        assert system.gcs.get(ref["key"]) is None
        assert loader.staged_count() == 0
        assert loader.ledger.live_bytes("sample_payload") == 0

    def test_ref_payload_reference_identity(self, system, small_catalog, filesystem):
        handle = spawn_loader(
            system, small_catalog, filesystem, buffer_size=8, assembly="columnar"
        )
        loader = handle.instance()
        sample_ids = [m.sample_id for m in loader.summary_buffer()[:2]]
        handle.call("prepare", sample_ids)
        # Reach into the staging store to grab the metadata objects, then
        # verify the object identity survives the whole hand-off.
        ref = handle.call("fetch_prepared_ref", sample_ids)
        columns = system.gcs.take(ref["key"])
        assert columns.metas[0] is loader._metadata_by_id[sample_ids[0]]

    def test_columnar_fetch_prepared_compat_materializes(
        self, system, small_catalog, filesystem
    ):
        legacy = spawn_loader(
            system, small_catalog, filesystem, buffer_size=16, assembly="legacy"
        )
        columnar = spawn_loader(
            system, small_catalog, filesystem, buffer_size=16, assembly="columnar"
        )
        ids_a = [m.sample_id for m in legacy.instance().summary_buffer()[:3]]
        ids_b = [m.sample_id for m in columnar.instance().summary_buffer()[:3]]
        assert ids_a == ids_b
        legacy.call("prepare", ids_a)
        columnar.call("prepare", ids_b)
        got_a = legacy.call("fetch_prepared", ids_a)
        got_b = columnar.call("fetch_prepared", ids_b)
        for a, b in zip(got_a, got_b):
            assert a.sample.metadata == b.sample.metadata
            assert a.transform_latency_s == b.transform_latency_s
            assert a.transferred_bytes == b.transferred_bytes
            assert a.deferred_transforms == b.deferred_transforms

    def test_legacy_loader_rejects_ref_fetch(self, system, small_catalog, filesystem):
        handle = spawn_loader(system, small_catalog, filesystem, assembly="legacy")
        with pytest.raises(PlanError, match="legacy assembly"):
            handle.call("fetch_prepared_ref", [1])

    def test_missing_staged_sample_error_matches_legacy(
        self, system, small_catalog, filesystem
    ):
        handle = spawn_loader(system, small_catalog, filesystem, assembly="columnar")
        with pytest.raises(PlanError, match="has no staged sample 12345"):
            handle.call("fetch_prepared", [12345])

    def test_invalid_assembly_configuration(self, small_catalog, filesystem):
        source = small_catalog.sources()[0]
        with pytest.raises(PlanError, match="unknown assembly"):
            SourceLoader(source, filesystem, assembly="vectorized")
        with pytest.raises(PlanError, match="keep_payloads"):
            SourceLoader(source, filesystem, assembly="columnar", keep_payloads=True)


# -- constructor equivalence ------------------------------------------------------------


def make_plan(tokens_by_microbatch, bucket=0):
    plan = ModulePlan(
        module="backbone",
        axis="DP",
        num_buckets=bucket + 1,
        num_microbatches=len(tokens_by_microbatch),
    )
    sid = 1
    for mb, token_list in enumerate(tokens_by_microbatch):
        samples = tuple(meta(sid + k, tokens) for k, tokens in enumerate(token_list))
        sid += len(token_list)
        plan.assignments.append(
            MicrobatchAssignment(bucket_index=bucket, microbatch_index=mb, samples=samples)
        )
    return plan


def columns_for(plan):
    staged = StagedColumns()
    ids = []
    for assignment in plan.assignments:
        for metadata in assignment.samples:
            staged.append(metadata, metadata.raw_bytes, 0.001, [])
            ids.append(metadata.sample_id)
    columns, _ = staged.take(ids)
    return columns


def prepared_for(plan):
    from repro.core.source_loader import PreparedSample
    from repro.data.samples import Sample

    prepared = {}
    for assignment in plan.assignments:
        for metadata in assignment.samples:
            prepared[metadata.sample_id] = PreparedSample(
                sample=Sample(metadata=metadata),
                transform_latency_s=0.001,
                transferred_bytes=metadata.raw_bytes,
            )
    return prepared


class TestConstructorEquivalence:
    @given(
        tokens=st.lists(
            st.lists(st.integers(min_value=0, max_value=900), min_size=1, max_size=10),
            min_size=1,
            max_size=4,
        ),
        packing=st.booleans(),
        mesh_dims=st.sampled_from([(1, 1, 1, 1), (2, 1, 2, 2), (1, 2, 2, 1), (2, 2, 1, 2)]),
    )
    @settings(max_examples=60, deadline=None)
    def test_rank_deliveries_byte_identical(self, tokens, packing, mesh_dims):
        pp, dp, cp, tp = mesh_dims
        mesh = DeviceMesh(pp=pp, dp=dp, cp=cp, tp=tp, gpus_per_node=8)
        plan = make_plan(tokens)
        deliveries = {}
        for assembly in ("legacy", "columnar"):
            constructor = DataConstructor(
                bucket_index=0,
                mesh=mesh,
                dp_index=0,
                max_sequence_length=512,
                packing=packing,
                assembly=assembly,
            )
            payload = columns_for(plan) if assembly == "columnar" else prepared_for(plan)
            stats = constructor.construct(0, plan, payload)
            deliveries[assembly] = {
                rank: constructor.get_batch(0, rank) for rank in constructor.ranks_served(0)
            }
            deliveries[f"{assembly}_stats"] = stats
        assert deliveries["legacy"].keys() == deliveries["columnar"].keys()
        for rank in deliveries["legacy"]:
            legacy, columnar = deliveries["legacy"][rank], deliveries["columnar"][rank]
            assert legacy == columnar
            assert legacy.total_tokens() == columnar.total_tokens()
            assert legacy.total_payload_bytes() == columnar.total_payload_bytes()
        # The virtual-clock charge must be identical too, or the twins would
        # diverge on the simulated timeline.
        assert (
            deliveries["legacy_stats"]["collate_seconds"]
            == deliveries["columnar_stats"]["collate_seconds"]
        )

    def test_missing_sample_error_matches_legacy(self):
        mesh = DeviceMesh(pp=1, dp=1, cp=1, tp=1, gpus_per_node=8)
        plan = make_plan([[64, 64]])
        constructor = DataConstructor(
            bucket_index=0, mesh=mesh, dp_index=0, assembly="columnar"
        )
        with pytest.raises(PlanError, match=r"missing prepared samples \[1, 2\]"):
            constructor.construct(0, plan, PreparedColumns.empty())

    def test_legacy_constructor_rejects_columns(self):
        mesh = DeviceMesh(pp=1, dp=1, cp=1, tp=1, gpus_per_node=8)
        plan = make_plan([[64]])
        constructor = DataConstructor(
            bucket_index=0, mesh=mesh, dp_index=0, assembly="legacy"
        )
        with pytest.raises(PlanError, match="cannot"):
            constructor.construct(0, plan, columns_for(plan))


# -- end-to-end -------------------------------------------------------------------------


def run_job(
    assembly, prefetch_depth=0, steps=3, scale_at=None, checkpoint_store=None, **overrides
):
    job = TrainingJobSpec(
        pp=2,
        dp=2,
        cp=2,
        tp=2,
        backbone="Llama-12B",
        samples_per_dp_step=8,
        num_microbatches=2,
        num_sources=3,
        samples_per_source=64,
        seed=13,
        prefetch_depth=prefetch_depth,
        assembly=assembly,
        **overrides,
    )
    framework = MegaScaleData.deploy(job, checkpoint_store=checkpoint_store)
    results = []
    for index in range(steps):
        if scale_at is not None and index == scale_at:
            framework.scale_source(framework.catalog.sources()[0].name, 2)
        results.append(framework.run_step(simulate=False))
    return framework, results


def assert_same_deliveries(legacy_results, columnar_results):
    for a, b in zip(legacy_results, columnar_results):
        assert a.step == b.step
        assert sorted(a.deliveries) == sorted(b.deliveries)
        for rank in a.deliveries:
            assert a.deliveries[rank] == b.deliveries[rank]
        assert a.data_fetch_latency_s == pytest.approx(b.data_fetch_latency_s, abs=1e-12)


class TestEndToEnd:
    @pytest.mark.parametrize("prefetch_depth", [0, 1, 3])
    def test_modes_identical_across_prefetch_depths(self, prefetch_depth):
        _, legacy = run_job("legacy", prefetch_depth=prefetch_depth)
        _, columnar = run_job("columnar", prefetch_depth=prefetch_depth)
        assert_same_deliveries(legacy, columnar)

    def test_modes_identical_across_midrun_elasticity(self):
        _, legacy = run_job("legacy", steps=4, scale_at=2)
        _, columnar = run_job("columnar", steps=4, scale_at=2)
        assert_same_deliveries(legacy, columnar)

    def test_unknown_assembly_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown assembly"):
            TrainingJobSpec(assembly="zero_copy")

    def test_columnar_leaves_no_gcs_handoff_keys(self):
        framework, _ = run_job("columnar", prefetch_depth=2, steps=3)
        assert framework.system.gcs.keys(prefix="prepared/") == []


# -- delivered-batch manifests ----------------------------------------------------------


class TestDeliveryManifests:
    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    def test_manifest_round_trip(self, backend):
        framework, results = run_job(
            "columnar", steps=3, checkpoint_backend=backend
        )
        for result in results:
            manifest = framework.delivery_manifest(result.step)
            assert manifest is not None
            assert manifest["step"] == result.step
            assert manifest["ranks"] == sorted(result.deliveries)
            delivered_ids = sorted(
                sid
                for ids in manifest["buckets"].values()
                for sid in ids
            )
            planned_ids = sorted(
                metadata.sample_id
                for bucket in result.backbone_assignments
                for microbatch in bucket
                for metadata in microbatch
            )
            assert delivered_ids == planned_ids
        audit = framework.delivery_audit()
        assert audit["steps"] == 3
        assert audit["exactly_once"] is True
        assert audit["gaps"] == []

    def test_audit_detects_gaps_and_duplicates(self):
        framework, _ = run_job("columnar", steps=3)
        store = framework.checkpoint_store
        # Simulate a lost manifest and a double delivery.
        steps = store.steps(MANIFEST_NAMESPACE)
        middle = steps[1]
        broken = store.load(MANIFEST_NAMESPACE, steps[2])
        first_bucket = next(iter(broken["buckets"]))
        broken["buckets"]["constructor/ghost"] = broken["buckets"][first_bucket][:1]
        store.save(MANIFEST_NAMESPACE, steps[2], broken)
        store.delete_from(MANIFEST_NAMESPACE, middle)
        store.save(MANIFEST_NAMESPACE, steps[2], broken)
        audit = framework.delivery_audit()
        assert audit["exactly_once"] is False
        assert middle in audit["gaps"]
        assert steps[2] in audit["duplicate_steps"]

    def test_manifests_survive_restore(self):
        store = InMemoryCheckpointStore()
        framework, _ = run_job("columnar", steps=3, checkpoint_store=store)
        framework.save_checkpoint()
        restored = MegaScaleData.restore(framework.job, store)
        audit = restored.delivery_audit()
        assert audit["steps"] == 3
        assert audit["exactly_once"] is True


def test_sqlite_store_importable():
    # Guard: the sqlite manifest backend used above must exist.
    assert SqliteCheckpointStore is not None
