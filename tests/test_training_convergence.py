"""Unit tests for the loss convergence simulator (Fig. 18 substrate)."""

from __future__ import annotations

import pytest

from repro.training.convergence import ConvergenceConfig, ConvergenceSimulator, max_divergence


def make_batches(sample_factory, steps=20, batch_size=8, tokens=256):
    batches = []
    counter = 0
    for _ in range(steps):
        batch = []
        for _ in range(batch_size):
            batch.append(sample_factory(counter, text_tokens=tokens))
            counter += 1
        batches.append(batch)
    return batches


class TestConvergence:
    def test_loss_decreases_over_training(self, sample_factory):
        sim = ConvergenceSimulator(seed=0)
        losses = sim.run(make_batches(sample_factory, steps=40, tokens=4096))
        assert losses[-1] < losses[0]
        assert sim.cumulative_tokens > 0

    def test_expected_loss_monotone(self):
        sim = ConvergenceSimulator()
        assert sim.expected_loss(0) > sim.expected_loss(1e7) > sim.expected_loss(1e9)

    def test_floor_respected(self):
        config = ConvergenceConfig(floor_loss=2.0)
        sim = ConvergenceSimulator(config)
        assert sim.expected_loss(1e18) == pytest.approx(2.0, abs=1e-6)

    def test_same_batches_same_losses(self, sample_factory):
        batches = make_batches(sample_factory)
        a = ConvergenceSimulator(seed=1).run(batches)
        b = ConvergenceSimulator(seed=1).run(batches)
        assert a == b

    def test_intra_step_reordering_does_not_change_loss(self, sample_factory):
        batches = make_batches(sample_factory)
        reordered = [list(reversed(batch)) for batch in batches]
        a = ConvergenceSimulator(seed=2).run(batches)
        b = ConvergenceSimulator(seed=2).run(reordered)
        assert max_divergence(a, b) == pytest.approx(0.0)

    def test_cross_step_reassignment_perturbs_loss_slightly(self, sample_factory):
        batches = make_batches(sample_factory, steps=10)
        swapped = [list(batch) for batch in batches]
        swapped[0][0], swapped[5][0] = swapped[5][0], swapped[0][0]
        a = ConvergenceSimulator(seed=3).run(batches)
        b = ConvergenceSimulator(seed=3).run(swapped)
        divergence = max_divergence(a, b)
        assert 0.0 < divergence < 1.0

    def test_cp_adds_bounded_noise(self, sample_factory):
        batches = make_batches(sample_factory, steps=30)
        base = ConvergenceSimulator(seed=4, context_parallel=False).run(batches)
        with_cp = ConvergenceSimulator(seed=4, context_parallel=True).run(batches)
        divergence = max_divergence(base, with_cp)
        assert 0.0 < divergence < 0.2

    def test_max_divergence_empty(self):
        assert max_divergence([], [1.0]) == 0.0
