"""Unit tests for the MegaScaleData facade and TrainingJobSpec."""

from __future__ import annotations

import pytest

from repro.core.framework import MegaScaleData, TrainingJobSpec
from repro.core.resharding import ReshardNotification
from repro.data.mixture import MixtureSchedule
from repro.errors import ConfigurationError
from repro.parallelism.mesh import DeviceMesh


@pytest.fixture(scope="module")
def deployed_system():
    job = TrainingJobSpec(
        pp=1,
        dp=2,
        cp=1,
        tp=2,
        backbone="Llama-12B",
        encoder="ViT-1B",
        samples_per_dp_step=8,
        num_microbatches=2,
        num_sources=4,
        samples_per_source=64,
        strategy="hybrid",
        seed=11,
    )
    return MegaScaleData.deploy(job)


class TestTrainingJobSpec:
    def test_device_mesh_shape(self):
        job = TrainingJobSpec(pp=2, dp=3, cp=1, tp=2)
        mesh = job.device_mesh()
        assert mesh.world_size == 12

    def test_vlm_model_built(self):
        job = TrainingJobSpec(backbone="Llama-12B", encoder="ViT-2B")
        model = job.model()
        assert model.backbone.name == "Llama-12B"
        assert model.encoder.name == "ViT-2B"

    def test_text_only_model(self):
        job = TrainingJobSpec.text_example()
        assert job.model().name == job.backbone

    def test_invalid_batching(self):
        with pytest.raises(ConfigurationError):
            TrainingJobSpec(samples_per_dp_step=2, num_microbatches=4)

    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigurationError):
            TrainingJobSpec(backbone="GPT-9")
        with pytest.raises(ConfigurationError):
            TrainingJobSpec(encoder="CLIP-XXL")

    def test_global_samples_per_step(self):
        job = TrainingJobSpec(dp=4, samples_per_dp_step=8)
        assert job.global_samples_per_step() == 32

    def test_example_specs_valid(self):
        assert TrainingJobSpec.vlm_example().encoder is not None
        assert TrainingJobSpec.text_example().encoder is None


class TestDeployment:
    def test_actor_inventory(self, deployed_system):
        system = deployed_system
        assert len(system.constructor_handles) == system.job.dp
        assert len(system.loader_handles) >= system.job.num_sources
        assert system.planner_handle.instance().loader_names

    def test_planner_on_cpu_pod(self, deployed_system):
        node = deployed_system.system.actor_node("planner")
        assert node.startswith("cpu-pod")

    def test_partition_plan_covers_sources(self, deployed_system):
        assert set(deployed_system.partition_plan.configs) == set(
            deployed_system.catalog.names()
        )

    def test_memory_report_nonzero(self, deployed_system):
        report = deployed_system.memory_report()
        assert report["total"] > 0
        assert deployed_system.loader_memory_bytes() > 0


class TestRunStep:
    def test_step_produces_deliveries_for_fetching_ranks(self, deployed_system):
        result = deployed_system.run_step()
        fetchers = set(result.plan.fetching_ranks)
        assert fetchers
        assert fetchers <= set(result.deliveries)
        assert result.fetched_bytes() > 0
        assert result.data_fetch_latency_s > 0

    def test_assignments_match_mesh(self, deployed_system):
        result = deployed_system.run_step()
        assert len(result.backbone_assignments) == deployed_system.job.dp
        assert all(
            len(bucket) == deployed_system.job.num_microbatches
            for bucket in result.backbone_assignments
        )
        assert result.encoder_assignments is not None
        assert len(result.encoder_assignments) == deployed_system.tree.mesh.world_size

    def test_simulate_iteration(self, deployed_system):
        result = deployed_system.run_step(simulate=True)
        assert result.iteration is not None
        assert result.iteration.iteration_time_s > 0
        assert result.iteration.total_tokens > 0

    def test_steps_advance_and_history_recorded(self, deployed_system):
        before = len(deployed_system.history())
        deployed_system.run_step()
        deployed_system.run_step()
        history = deployed_system.history()
        assert len(history) == before + 2
        assert history[-1].step == history[-2].step + 1

    def test_next_batch_wrapper(self, deployed_system):
        deliveries = deployed_system.next_batch()
        assert deliveries

    def test_sync_path_keeps_random_step_access(self):
        """Regression: with prefetch_depth=0 the trainer may re-request an
        earlier step (rollback); the in-order guard only binds the pipeline."""
        job = TrainingJobSpec(
            pp=1, dp=2, cp=1, tp=1, encoder=None, strategy="backbone_balance",
            samples_per_dp_step=4, num_microbatches=2, num_sources=3, samples_per_source=48,
        )
        system = MegaScaleData.deploy(job)
        system.run_step(step=5)
        result = system.run_step(step=3)
        assert result.step == 3
        assert result.deliveries
        system.shutdown()

    def test_run_training_summary(self, deployed_system):
        summary = deployed_system.run_training(num_steps=2)
        assert summary["steps"] == 2
        assert summary["avg_iteration_time_s"] > 0
        assert summary["throughput_tokens_per_s"] > 0


class TestReshard:
    def test_handle_reshard_updates_topology(self):
        job = TrainingJobSpec(
            pp=1, dp=2, cp=1, tp=1, encoder=None, strategy="backbone_balance",
            samples_per_dp_step=4, num_microbatches=2, num_sources=3, samples_per_source=32,
        )
        system = MegaScaleData.deploy(job)
        system.run_step()
        new_mesh = DeviceMesh(pp=1, dp=2, cp=1, tp=2)
        report = system.handle_reshard(ReshardNotification(step=1, new_mesh=new_mesh))
        assert report.new_world_size == 4
        assert system.tree.mesh is new_mesh
        result = system.run_step()
        assert result.deliveries

    @pytest.mark.parametrize("prefetch_depth", [0, 2])
    def test_shrinking_reshard_retires_constructors(self, prefetch_depth):
        """Regression: a DP shrink must retire surplus constructors (and, with
        prefetching, flush in-flight steps) instead of crashing construct."""
        job = TrainingJobSpec(
            pp=1, dp=2, cp=1, tp=1, encoder=None, strategy="backbone_balance",
            samples_per_dp_step=4, num_microbatches=2, num_sources=3,
            samples_per_source=48, prefetch_depth=prefetch_depth,
        )
        system = MegaScaleData.deploy(job)
        system.run_step()
        report = system.handle_reshard(
            ReshardNotification(step=1, new_mesh=DeviceMesh(pp=1, dp=1, cp=1, tp=1))
        )
        assert report.constructors_retired == 1
        assert len(system.constructor_handles) == 1
        result = system.run_step()
        assert result.step == 1
        assert result.deliveries
        system.shutdown()
        assert system.memory_report()["total"] == 0

    def test_growing_reshard_provisions_constructors(self):
        job = TrainingJobSpec(
            pp=1, dp=2, cp=1, tp=1, encoder=None, strategy="backbone_balance",
            samples_per_dp_step=8, num_microbatches=2, num_sources=3,
            samples_per_source=64, prefetch_depth=1,
        )
        system = MegaScaleData.deploy(job)
        system.run_step()
        report = system.handle_reshard(
            ReshardNotification(step=1, new_mesh=DeviceMesh(pp=1, dp=4, cp=1, tp=1))
        )
        assert report.constructors_added == 2
        assert len(system.constructor_handles) == 4
        result = system.run_step()
        assert len(result.deliveries) == 4
        system.shutdown()


class TestShutdownAndMixture:
    def test_shutdown_releases_memory(self):
        job = TrainingJobSpec(
            pp=1, dp=1, cp=1, tp=1, encoder=None, strategy="vanilla",
            samples_per_dp_step=4, num_microbatches=2, num_sources=2, samples_per_source=32,
        )
        system = MegaScaleData.deploy(job)
        assert system.memory_report()["total"] > 0
        system.shutdown()
        assert system.memory_report()["total"] == 0

    def test_double_shutdown_is_idempotent(self):
        """Regression: a second shutdown() must be a harmless no-op."""
        job = TrainingJobSpec(
            pp=1, dp=1, cp=1, tp=1, encoder=None, strategy="vanilla",
            samples_per_dp_step=4, num_microbatches=2, num_sources=2, samples_per_source=32,
        )
        system = MegaScaleData.deploy(job)
        system.run_step()
        system.shutdown()
        state_after_first = system.memory_report()
        system.shutdown()  # must not raise or change anything
        assert system.memory_report() == state_after_first
        assert system.memory_report()["total"] == 0

    def test_shutdown_drains_inflight_prefetch_work(self):
        """Shutdown with a warm prefetch pipeline cancels queued work and
        releases every byte staged for never-consumed steps."""
        job = TrainingJobSpec(
            pp=1, dp=2, cp=1, tp=1, encoder=None, strategy="backbone_balance",
            samples_per_dp_step=4, num_microbatches=2, num_sources=3,
            samples_per_source=48, prefetch_depth=2,
        )
        system = MegaScaleData.deploy(job)
        system.run_step()
        assert system.pipeline.inflight()  # steps 1..2 staged ahead
        system.shutdown()
        assert not system.pipeline.inflight()
        assert system.system.pending_count() == 0
        assert system.memory_report()["total"] == 0
        system.shutdown()  # idempotent with the pipeline attached too
        assert system.memory_report()["total"] == 0

    def test_shutdown_covers_promoted_and_shadow_actors(self):
        job = TrainingJobSpec(
            pp=1, dp=2, cp=1, tp=1, encoder=None, strategy="backbone_balance",
            samples_per_dp_step=4, num_microbatches=2, num_sources=3,
            samples_per_source=48, enable_shadow_loaders=True, prefetch_depth=1,
        )
        system = MegaScaleData.deploy(job)
        system.run_step()
        system.system.failures.fail(system.loader_handles[0].name)
        system.run_step()  # triggers shadow promotion inside the pipeline
        system.shutdown()
        assert system.memory_report()["total"] == 0

    def test_user_mixture_respected(self):
        job = TrainingJobSpec(
            pp=1, dp=2, cp=1, tp=1, encoder=None, strategy="backbone_balance",
            samples_per_dp_step=4, num_microbatches=2, num_sources=3, samples_per_source=32,
        )
        system = MegaScaleData.deploy(job)
        names = system.catalog.names()
        system.set_mixture(
            MixtureSchedule.static({names[0]: 0.98, **{n: 0.01 for n in names[1:]}})
        )
        result = system.run_step()
        demands = result.plan.source_demands
        total = sum(len(ids) for ids in demands.values())
        assert len(demands.get(names[0], [])) > 0.5 * total

    def test_set_mixture_invalidates_weights_memo(self):
        """Swapping schedules at runtime must not serve the old schedule's
        memoized weights: set_mixture installs a new schedule instance, and
        the planner reads the new weights for a step the old instance had
        already memoized."""
        job = TrainingJobSpec(
            pp=1, dp=2, cp=1, tp=1, encoder=None, strategy="backbone_balance",
            samples_per_dp_step=4, num_microbatches=2, num_sources=3,
            samples_per_source=32,
        )
        system = MegaScaleData.deploy(job)
        try:
            names = system.catalog.names()
            system.set_mixture(MixtureSchedule.uniform(names))
            planner = system.planner_handle.instance()
            old = planner.mixture
            old_weights = old.weights_at(5)
            assert 5 in old._weights_memo
            system.set_mixture(
                MixtureSchedule.static({names[0]: 0.9, **{n: 0.05 for n in names[1:]}})
            )
            assert planner.mixture is not old
            assert 5 not in planner.mixture._weights_memo
            new_weights = planner.mixture.weights_at(5)
            assert new_weights != old_weights
            assert new_weights[names[0]] == pytest.approx(0.9)
        finally:
            system.shutdown()


class TestSetMixtureFlushPending:
    def make_job(self, prefetch_depth: int) -> TrainingJobSpec:
        return TrainingJobSpec(
            pp=1, dp=2, cp=1, tp=1, encoder=None, strategy="backbone_balance",
            samples_per_dp_step=4, num_microbatches=2, num_sources=3,
            samples_per_source=48, seed=7, prefetch_depth=prefetch_depth,
            enable_autoscaler=False,
        )

    @staticmethod
    def signature(result):
        return {
            rank: [
                (piece.rank, piece.microbatch_index, piece.token_count, piece.payload_bytes)
                for piece in delivery.slices
            ]
            for rank, delivery in sorted(result.deliveries.items())
        }

    def heavy_mixture(self, system):
        names = system.catalog.names()
        return MixtureSchedule.static({names[-1]: 0.9, **{n: 0.05 for n in names[:-1]}})

    def test_flush_pending_matches_synchronous_switch(self):
        """Determinism regression: a mid-run mixture swap with
        ``flush_pending=True`` re-plans in-flight steps, so the prefetched
        run stays byte-identical to a synchronous run switching at the same
        step (the documented limitation this option closes)."""
        sync = MegaScaleData.deploy(self.make_job(0))
        prefetched = MegaScaleData.deploy(self.make_job(2))
        try:
            for _ in range(2):
                assert self.signature(sync.run_step()) == self.signature(prefetched.run_step())
            sync.set_mixture(self.heavy_mixture(sync))
            prefetched.set_mixture(self.heavy_mixture(prefetched), flush_pending=True)
            for _ in range(3):
                a, b = sync.run_step(), prefetched.run_step()
                assert a.plan.source_demands == b.plan.source_demands
                assert self.signature(a) == self.signature(b)
        finally:
            sync.shutdown()
            prefetched.shutdown()

    def test_without_flush_inflight_steps_keep_old_mixture(self):
        """The default keeps the documented behaviour: steps already planned
        in flight still deliver samples drawn under the old mixture."""
        sync = MegaScaleData.deploy(self.make_job(0))
        prefetched = MegaScaleData.deploy(self.make_job(2))
        try:
            for _ in range(2):
                sync.run_step()
                prefetched.run_step()
            sync.set_mixture(self.heavy_mixture(sync))
            prefetched.set_mixture(self.heavy_mixture(prefetched))  # no flush
            a, b = sync.run_step(), prefetched.run_step()
            # The prefetched step 2 was planned before the swap.
            assert a.plan.source_demands != b.plan.source_demands
        finally:
            sync.shutdown()
            prefetched.shutdown()

    def test_flush_pending_noop_on_synchronous_deployment(self):
        system = MegaScaleData.deploy(self.make_job(0))
        try:
            system.run_step()
            system.set_mixture(self.heavy_mixture(system), flush_pending=True)
            assert system.run_step().deliveries
        finally:
            system.shutdown()
