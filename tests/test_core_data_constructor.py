"""Unit tests for Data Constructor actors."""

from __future__ import annotations

import pytest

from repro.actors.runtime import ActorSystem, ClusterSpec
from repro.core.data_constructor import DataConstructor
from repro.core.plans import MicrobatchAssignment, ModulePlan
from repro.core.source_loader import PreparedSample
from repro.data.samples import Sample
from repro.errors import PlanError
from repro.parallelism.mesh import DeviceMesh
from repro.utils.units import GIB


def make_plan(sample_factory, buckets=2, microbatches=2, tokens=128):
    plan = ModulePlan(module="backbone", axis="DP", num_buckets=buckets, num_microbatches=microbatches)
    sid = 0
    for bucket in range(buckets):
        for mb in range(microbatches):
            samples = tuple(sample_factory(sid + k, text_tokens=tokens) for k in range(2))
            sid += 2
            plan.assignments.append(
                MicrobatchAssignment(bucket_index=bucket, microbatch_index=mb, samples=samples)
            )
    return plan


def prepared_for(plan):
    prepared = {}
    for assignment in plan.assignments:
        for metadata in assignment.samples:
            prepared[metadata.sample_id] = PreparedSample(
                sample=Sample(metadata=metadata),
                transform_latency_s=0.001,
                transferred_bytes=metadata.raw_bytes,
            )
    return prepared


@pytest.fixture()
def system():
    return ActorSystem(ClusterSpec(accelerator_nodes=1, cpu_pods=1))


def spawn_constructor(system, mesh, dp_index=0, **kwargs):
    return system.create_actor(
        lambda: DataConstructor(bucket_index=dp_index, mesh=mesh, dp_index=dp_index, **kwargs),
        name=f"constructor-{dp_index}",
        memory_bytes=GIB,
    )


class TestConstruct:
    def test_construct_and_deliver(self, system, vlm_mesh, sample_factory):
        handle = spawn_constructor(system, vlm_mesh)
        plan = make_plan(sample_factory)
        stats = handle.call("construct", 0, plan, prepared_for(plan))
        assert stats["num_microbatches"] == 2
        constructor = handle.instance()
        served = constructor.ranks_served(0)
        assert set(served) == set(vlm_mesh.ranks_where(dp=0))
        delivery = handle.call("get_batch", 0, served[0])
        assert delivery.rank == served[0]
        assert len(delivery.slices) == 2

    def test_missing_prepared_sample_rejected(self, system, vlm_mesh, sample_factory):
        handle = spawn_constructor(system, vlm_mesh)
        plan = make_plan(sample_factory)
        with pytest.raises(PlanError):
            handle.call("construct", 0, plan, {})

    def test_plan_without_bucket_rejected(self, system, vlm_mesh, sample_factory):
        handle = spawn_constructor(system, vlm_mesh, dp_index=1)
        plan = ModulePlan(module="backbone", axis="DP", num_buckets=2, num_microbatches=1)
        plan.assignments.append(
            MicrobatchAssignment(bucket_index=0, microbatch_index=0, samples=(sample_factory(0),))
        )
        with pytest.raises(PlanError):
            handle.call("construct", 0, plan, prepared_for(plan))

    def test_get_batch_unknown_step(self, system, vlm_mesh):
        handle = spawn_constructor(system, vlm_mesh)
        with pytest.raises(PlanError):
            handle.call("get_batch", 5, 0)

    def test_get_batch_foreign_rank(self, system, vlm_mesh, sample_factory):
        handle = spawn_constructor(system, vlm_mesh, dp_index=0)
        plan = make_plan(sample_factory)
        handle.call("construct", 0, plan, prepared_for(plan))
        foreign_rank = vlm_mesh.ranks_where(dp=1)[0]
        with pytest.raises(PlanError):
            handle.call("get_batch", 0, foreign_rank)


class TestParallelismSharing:
    def test_tp_broadcast_saves_bytes(self, system, sample_factory):
        mesh = DeviceMesh(pp=1, dp=1, cp=1, tp=4)
        with_bcast = spawn_constructor(system, mesh, broadcast_tp=True)
        plan = make_plan(sample_factory, buckets=1)
        with_bcast.call("construct", 0, plan, prepared_for(plan))
        assert with_bcast.instance().stats.broadcast_bytes_saved > 0

    def test_memory_released_after_step(self, system, vlm_mesh, sample_factory):
        handle = spawn_constructor(system, vlm_mesh)
        plan = make_plan(sample_factory)
        handle.call("construct", 0, plan, prepared_for(plan))
        constructor = handle.instance()
        assert constructor.ledger.live_bytes("constructed_batch") > 0
        handle.call("release_step", 0)
        assert constructor.ledger.live_bytes("constructed_batch") == 0
        assert constructor.staged_steps() == []

    def test_pp_later_stage_gets_metadata_only(self, system, sample_factory):
        mesh = DeviceMesh(pp=4, dp=1, cp=1, tp=1)
        handle = spawn_constructor(system, mesh)
        plan = make_plan(sample_factory, buckets=1)
        handle.call("construct", 0, plan, prepared_for(plan))
        constructor = handle.instance()
        middle_rank = mesh.ranks_where(pp=1)[0]
        delivery = constructor.get_batch(0, middle_rank)
        assert all(piece.metadata_only for piece in delivery.slices)
        first_rank = mesh.ranks_where(pp=0)[0]
        first_delivery = constructor.get_batch(0, first_rank)
        assert first_delivery.total_tokens() > 0

    def test_packing_vs_padding_payload(self, system, sample_factory):
        mesh = DeviceMesh(pp=1, dp=1, cp=1, tp=1)
        packed = spawn_constructor(system, mesh, packing=True)
        padded = system.create_actor(
            lambda: DataConstructor(0, mesh, 0, packing=False),
            name="padded-constructor",
            memory_bytes=GIB,
        )
        plan = make_plan(sample_factory, buckets=1, tokens=100)
        packed.call("construct", 0, plan, prepared_for(plan))
        padded.call("construct", 0, plan, prepared_for(plan))
        packed_bytes = packed.instance().get_batch(0, 0).total_payload_bytes()
        padded_bytes = padded.instance().get_batch(0, 0).total_payload_bytes()
        assert packed_bytes <= padded_bytes


class TestReshardAndCheckpoint:
    def test_reshard_drops_staged_and_adopts_mesh(self, system, vlm_mesh, sample_factory):
        handle = spawn_constructor(system, vlm_mesh)
        plan = make_plan(sample_factory)
        handle.call("construct", 0, plan, prepared_for(plan))
        new_mesh = DeviceMesh(pp=1, dp=2, cp=1, tp=2)
        handle.call("reshard", new_mesh, 1)
        constructor = handle.instance()
        assert constructor.mesh is new_mesh
        assert constructor.dp_index == 1
        assert constructor.staged_steps() == []
        assert constructor.ledger.live_bytes("constructed_batch") == 0

    def test_state_dict_roundtrip(self, system, vlm_mesh, sample_factory):
        handle = spawn_constructor(system, vlm_mesh)
        state = handle.instance().state_dict()
        handle.instance().load_state_dict(state)
        other = DataConstructor(bucket_index=3, mesh=vlm_mesh, dp_index=3)
        with pytest.raises(PlanError):
            other.load_state_dict(state)

    def test_heartbeat_payload(self, system, vlm_mesh):
        handle = spawn_constructor(system, vlm_mesh)
        payload = handle.call("heartbeat_payload")
        assert payload["bucket"] == 0
