"""Unit tests for the baseline dataloader architecture models."""

from __future__ import annotations

import pytest

from repro.baselines import (
    ALL_BASELINES,
    CachewLoader,
    MegaScaleArchitectureModel,
    PecanLoader,
    RayDataLoader,
    TfDataServiceLoader,
    TorchColocatedLoader,
)
from repro.baselines.base import estimate_transform_pipeline_latency
from repro.parallelism.mesh import DeviceMesh


@pytest.fixture()
def mesh_288():
    """TP=4, PP=8, DP=9 (the paper's 288-GPU trial)."""
    return DeviceMesh(pp=8, dp=9, cp=1, tp=4, gpus_per_node=16)


def build(cls, catalog, mesh, **kwargs):
    defaults = {"samples_per_dp_step": 32, "num_microbatches": 4}
    defaults.update(kwargs)
    return cls(catalog, mesh, **defaults)


class TestStructuralDifferences:
    def test_torch_runs_one_client_per_rank(self, small_catalog, mesh_288):
        loader = build(TorchColocatedLoader, small_catalog, mesh_288)
        assert loader.loader_clients() == mesh_288.world_size

    def test_megascale_runs_far_fewer_clients(self, small_catalog, mesh_288):
        torch = build(TorchColocatedLoader, small_catalog, mesh_288)
        ours = build(MegaScaleArchitectureModel, small_catalog, mesh_288)
        assert ours.loader_clients() < torch.loader_clients() / 4

    def test_memory_breakdown_source_state_dominates_for_many_sources(self, filesystem, mesh_288):
        """Fig. 4: with hundreds of sources, file-access state dominates memory."""
        from repro.data.synthetic import build_source_catalog, navit_like_spec

        catalog = build_source_catalog(
            navit_like_spec(num_sources=100, samples_per_source=4), filesystem
        )
        breakdown = build(TorchColocatedLoader, catalog, mesh_288).memory_breakdown()
        assert breakdown["source_state"] > 0.7 * sum(breakdown.values())

    def test_megascale_memory_far_below_torch(self, small_catalog, mesh_288):
        torch = build(TorchColocatedLoader, small_catalog, mesh_288)
        ours = build(MegaScaleArchitectureModel, small_catalog, mesh_288)
        ratio = torch.per_node_memory_bytes() / ours.per_node_memory_bytes()
        assert ratio > 3.0

    def test_ray_data_memory_below_torch(self, small_catalog, mesh_288):
        torch = build(TorchColocatedLoader, small_catalog, mesh_288)
        ray = build(RayDataLoader, small_catalog, mesh_288)
        assert ray.per_node_memory_bytes() < torch.per_node_memory_bytes()

    def test_pecan_reordering_cuts_fetch_latency_vs_tfdata(self, small_catalog, mesh_288):
        tf = build(TfDataServiceLoader, small_catalog, mesh_288)
        pecan = build(PecanLoader, small_catalog, mesh_288)
        assert pecan.fetch_latency_s() < tf.fetch_latency_s()

    def test_cachew_adds_cache_memory(self, small_catalog, mesh_288):
        cachew = build(CachewLoader, small_catalog, mesh_288).memory_breakdown()
        assert cachew["cache"] > 0

    def test_megascale_fetch_latency_same_order_as_baselines(self, small_catalog, mesh_288):
        """The paper accepts a minor coordination overhead on fetch latency as
        long as it is maskable by training compute (Fig. 12 middle panel)."""
        ours = build(MegaScaleArchitectureModel, small_catalog, mesh_288).fetch_latency_s()
        baseline_latencies = [
            build(cls, small_catalog, mesh_288).fetch_latency_s() for cls in ALL_BASELINES.values()
        ]
        assert ours < 5.0 * min(baseline_latencies)


class TestScalingBehaviour:
    def test_baseline_memory_grows_with_sources(self, filesystem, mesh_288):
        from repro.data.synthetic import build_source_catalog, navit_like_spec

        small = build_source_catalog(navit_like_spec(num_sources=10, samples_per_source=8), filesystem)
        fs2 = type(filesystem)()
        large = build_source_catalog(navit_like_spec(num_sources=80, samples_per_source=8), fs2)
        mem_small = build(TorchColocatedLoader, small, mesh_288).total_memory_bytes()
        mem_large = build(TorchColocatedLoader, large, mesh_288).total_memory_bytes()
        assert mem_large > 2.5 * mem_small

    def test_megascale_memory_grows_sublinearly_with_parallelism(self, small_catalog):
        small_mesh = DeviceMesh(pp=1, dp=4, cp=1, tp=1, gpus_per_node=4)
        big_mesh = DeviceMesh(pp=4, dp=4, cp=2, tp=2, gpus_per_node=16)
        torch_growth = (
            build(TorchColocatedLoader, small_catalog, big_mesh).total_memory_bytes()
            / build(TorchColocatedLoader, small_catalog, small_mesh).total_memory_bytes()
        )
        ours_growth = (
            build(MegaScaleArchitectureModel, small_catalog, big_mesh).total_memory_bytes()
            / build(MegaScaleArchitectureModel, small_catalog, small_mesh).total_memory_bytes()
        )
        assert ours_growth < torch_growth

    def test_worker_autoscaling_reacts_to_target_time(self, small_catalog, mesh_288):
        tight = build(TorchColocatedLoader, small_catalog, mesh_288, target_iteration_time_s=1.0)
        loose = build(TorchColocatedLoader, small_catalog, mesh_288, target_iteration_time_s=60.0)
        assert tight.workers_per_client() >= loose.workers_per_client()


class TestAssignmentsAndReports:
    def test_baseline_assignments_cover_samples(self, small_catalog, mesh_288, sample_factory):
        loader = build(TorchColocatedLoader, small_catalog, DeviceMesh(pp=1, dp=4))
        samples = [sample_factory(i, text_tokens=64 * (1 + i % 5)) for i in range(64)]
        assignments = loader.build_assignments(samples)
        assert len(assignments) == 4
        assigned = sum(len(mb) for bucket in assignments for mb in bucket)
        assert assigned == 64

    def test_megascale_assignments_are_balanced(self, small_catalog, sample_factory):
        mesh = DeviceMesh(pp=1, dp=4)
        ours = build(MegaScaleArchitectureModel, small_catalog, mesh)
        baseline = build(TorchColocatedLoader, small_catalog, mesh)
        samples = [sample_factory(i, text_tokens=2 ** (5 + i % 7)) for i in range(64)]

        def spread(assignments):
            costs = [
                sum(float(s.total_tokens) ** 2 for mb in bucket for s in mb)
                for bucket in assignments
            ]
            return max(costs) / max(1e-9, min(costs))

        assert spread(ours.build_assignments(samples)) < spread(baseline.build_assignments(samples))

    def test_evaluate_reports_all_fields(self, small_catalog, mesh_288):
        for cls in list(ALL_BASELINES.values()) + [MegaScaleArchitectureModel]:
            report = build(cls, small_catalog, mesh_288).evaluate()
            assert report.per_node_memory_bytes > 0
            assert report.fetch_latency_s > 0
            assert report.loader_clients > 0
            assert report.workers_per_client >= 1

    def test_transform_latency_estimates_cover_catalog(self, small_catalog):
        estimates = estimate_transform_pipeline_latency(small_catalog)
        assert set(estimates) == set(small_catalog.names())
        assert all(latency > 0 for latency in estimates.values())
