"""Unit tests for the Planner actor."""

from __future__ import annotations

import pytest

from repro.actors.runtime import ActorSystem, ClusterSpec
from repro.core.autoscaler import MixtureDrivenScaler, ResourceBudget, SourceAutoPartitioner
from repro.core.place_tree import ClientPlaceTree
from repro.core.planner import Planner
from repro.core.source_loader import SourceLoader
from repro.core.strategies import StrategyConfig, backbone_balance_strategy
from repro.data.mixture import MixturePhase, MixtureSchedule
from repro.errors import PlanError
from repro.utils.units import GIB


@pytest.fixture()
def system():
    return ActorSystem(ClusterSpec(accelerator_nodes=1, cpu_pods=1))


@pytest.fixture()
def loader_handles(system, small_catalog, filesystem):
    handles = []
    for index, source in enumerate(small_catalog.sources()[:4]):
        handles.append(
            system.create_actor(
                lambda src=source: SourceLoader(src, filesystem, buffer_size=16),
                name=f"loader-{index}",
                memory_bytes=GIB,
            )
        )
    return handles


def make_planner(system, tree, loader_handles, mixture=None, scaler=None, **kwargs):
    handle = system.create_actor(
        lambda: Planner(
            strategy=backbone_balance_strategy(StrategyConfig(mixture=mixture, num_microbatches=2)),
            tree=tree,
            mixture=mixture,
            scaler=scaler,
            gcs=system.gcs,
            **kwargs,
        ),
        name=f"planner-{len(system.list_actor_names())}",
        memory_bytes=GIB,
    )
    handle.instance().register_loaders(loader_handles)
    return handle


class TestPlanning:
    def test_generate_plan_demands_buffered_samples(self, system, dp_mesh, loader_handles):
        tree = ClientPlaceTree(dp_mesh)
        planner = make_planner(system, tree, loader_handles)
        plan = planner.call("generate_plan")
        assert plan.step == 0
        assert plan.total_samples() == 4 * 16
        assert set(plan.source_demands) == {
            handle.instance().source.name for handle in loader_handles
        }

    def test_planner_requires_loaders(self, system, dp_mesh):
        tree = ClientPlaceTree(dp_mesh)
        handle = system.create_actor(
            lambda: Planner(
                strategy=backbone_balance_strategy(StrategyConfig()), tree=tree
            ),
            name="lonely-planner",
        )
        with pytest.raises(PlanError):
            handle.call("generate_plan")

    def test_timings_recorded_per_step(self, system, dp_mesh, loader_handles):
        planner = make_planner(system, ClientPlaceTree(dp_mesh), loader_handles)
        planner.call("generate_plan")
        planner.call("generate_plan")
        stats = planner.instance().stats
        assert stats.plans_generated == 2
        assert len(stats.timings) == 2
        timings = stats.latest_timings()
        assert timings.buffer_gather_s > 0
        assert timings.compute_plan_s > 0
        assert timings.broadcast_plan_s > 0
        assert timings.total_s == pytest.approx(
            timings.buffer_gather_s + timings.compute_plan_s + timings.broadcast_plan_s
        )

    def test_steps_advance_automatically(self, system, dp_mesh, loader_handles):
        planner = make_planner(system, ClientPlaceTree(dp_mesh), loader_handles)
        assert planner.call("generate_plan").step == 0
        assert planner.call("generate_plan").step == 1
        history = planner.instance().plan_history()
        assert [p.step for p in history] == [0, 1]

    def test_latest_plan_requires_history(self, system, dp_mesh, loader_handles):
        planner = make_planner(system, ClientPlaceTree(dp_mesh), loader_handles)
        with pytest.raises(PlanError):
            planner.instance().latest_plan()
        planner.call("generate_plan")
        assert planner.instance().latest_plan().step == 0


class TestMixtureAndScaling:
    def test_mixture_weights_recorded(self, system, dp_mesh, loader_handles, small_catalog):
        names = [h.instance().source.name for h in loader_handles]
        mixture = MixtureSchedule.uniform(names)
        planner = make_planner(system, ClientPlaceTree(dp_mesh), loader_handles, mixture=mixture)
        plan = planner.call("generate_plan")
        assert set(plan.mixture_weights) == set(names)

    def test_scaling_plan_piggybacked_on_weight_shift(
        self, system, dp_mesh, loader_handles, small_catalog
    ):
        names = [h.instance().source.name for h in loader_handles]
        hot = names[0]
        mixture = MixtureSchedule.staged(
            [
                MixturePhase(0, {name: 1.0 for name in names}),
                MixturePhase(5, {hot: 0.97, **{n: 0.01 for n in names[1:]}}),
            ]
        )
        partition = SourceAutoPartitioner().partition(
            small_catalog, ResourceBudget(cpu_cores=64, memory_bytes=64 * GIB)
        )
        scaler = MixtureDrivenScaler(partition, consecutive_intervals=2, window=3)
        planner = make_planner(
            system, ClientPlaceTree(dp_mesh), loader_handles, mixture=mixture, scaler=scaler
        )
        scaling_seen = False
        for step in range(15):
            plan = planner.call("generate_plan", step)
            if plan.scaling is not None and plan.scaling.for_source(hot):
                scaling_seen = True
                break
        assert scaling_seen


class TestFaultTolerance:
    def test_checkpoints_written_to_gcs(self, system, dp_mesh, loader_handles):
        planner = make_planner(system, ClientPlaceTree(dp_mesh), loader_handles)
        planner.call("generate_plan")
        planner.call("generate_plan")
        assert system.gcs.get("planner/last_step") == 1
        assert system.gcs.keys("planner/plan/") == ["planner/plan/0", "planner/plan/1"]

    def test_replay_from_gcs_resumes_step(self, system, dp_mesh, loader_handles):
        planner = make_planner(system, ClientPlaceTree(dp_mesh), loader_handles)
        for _ in range(3):
            planner.call("generate_plan")
        fresh = Planner(
            strategy=backbone_balance_strategy(StrategyConfig()),
            tree=ClientPlaceTree(dp_mesh),
            gcs=system.gcs,
        )
        assert fresh.replay_from_gcs() == 3

    def test_replay_without_gcs_keeps_step(self, dp_mesh):
        planner = Planner(
            strategy=backbone_balance_strategy(StrategyConfig()), tree=ClientPlaceTree(dp_mesh)
        )
        assert planner.replay_from_gcs() == 0

    def test_state_dict_roundtrip(self, system, dp_mesh, loader_handles):
        planner = make_planner(system, ClientPlaceTree(dp_mesh), loader_handles)
        planner.call("generate_plan")
        state = planner.instance().state_dict()
        fresh = Planner(
            strategy=backbone_balance_strategy(StrategyConfig()), tree=ClientPlaceTree(dp_mesh)
        )
        fresh.load_state_dict(state)
        assert fresh.heartbeat_payload()["step"] == 1
