"""Unit tests for the Planner actor."""

from __future__ import annotations

import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.actors.runtime import ActorSystem, ClusterSpec
from repro.core.autoscaler import MixtureDrivenScaler, ResourceBudget, SourceAutoPartitioner
from repro.core.columns import SampleColumns
from repro.core.place_tree import ClientPlaceTree
from repro.core.planner import Planner
from repro.core.source_loader import SourceLoader
from repro.core.strategies import (
    StrategyConfig,
    backbone_balance_strategy,
    make_strategy,
    vanilla_strategy,
)
from repro.data.synthetic import build_source_catalog, navit_like_spec
from repro.storage.filesystem import SimulatedFileSystem
from repro.data.mixture import MixturePhase, MixtureSchedule
from repro.data.samples import Modality, SampleMetadata
from repro.errors import PlanError
from repro.parallelism.mesh import DeviceMesh
from repro.utils.units import GIB


@pytest.fixture()
def system():
    return ActorSystem(ClusterSpec(accelerator_nodes=1, cpu_pods=1))


@pytest.fixture()
def loader_handles(system, small_catalog, filesystem):
    handles = []
    for index, source in enumerate(small_catalog.sources()[:4]):
        handles.append(
            system.create_actor(
                lambda src=source: SourceLoader(src, filesystem, buffer_size=16),
                name=f"loader-{index}",
                memory_bytes=GIB,
            )
        )
    return handles


def make_planner(system, tree, loader_handles, mixture=None, scaler=None, **kwargs):
    handle = system.create_actor(
        lambda: Planner(
            strategy=backbone_balance_strategy(StrategyConfig(mixture=mixture, num_microbatches=2)),
            tree=tree,
            mixture=mixture,
            scaler=scaler,
            gcs=system.gcs,
            **kwargs,
        ),
        name=f"planner-{len(system.list_actor_names())}",
        memory_bytes=GIB,
    )
    handle.instance().register_loaders(loader_handles)
    return handle


class TestPlanning:
    def test_generate_plan_demands_buffered_samples(self, system, dp_mesh, loader_handles):
        tree = ClientPlaceTree(dp_mesh)
        planner = make_planner(system, tree, loader_handles)
        plan = planner.call("generate_plan")
        assert plan.step == 0
        assert plan.total_samples() == 4 * 16
        assert set(plan.source_demands) == {
            handle.instance().source.name for handle in loader_handles
        }

    def test_planner_requires_loaders(self, system, dp_mesh):
        tree = ClientPlaceTree(dp_mesh)
        handle = system.create_actor(
            lambda: Planner(
                strategy=backbone_balance_strategy(StrategyConfig()), tree=tree
            ),
            name="lonely-planner",
        )
        with pytest.raises(PlanError):
            handle.call("generate_plan")

    def test_timings_recorded_per_step(self, system, dp_mesh, loader_handles):
        planner = make_planner(system, ClientPlaceTree(dp_mesh), loader_handles)
        planner.call("generate_plan")
        planner.call("generate_plan")
        stats = planner.instance().stats
        assert stats.plans_generated == 2
        assert len(stats.timings) == 2
        timings = stats.latest_timings()
        assert timings.buffer_gather_s > 0
        assert timings.compute_plan_s > 0
        assert timings.broadcast_plan_s > 0
        assert timings.total_s == pytest.approx(
            timings.buffer_gather_s + timings.compute_plan_s + timings.broadcast_plan_s
        )

    def test_steps_advance_automatically(self, system, dp_mesh, loader_handles):
        planner = make_planner(system, ClientPlaceTree(dp_mesh), loader_handles)
        assert planner.call("generate_plan").step == 0
        assert planner.call("generate_plan").step == 1
        history = planner.instance().plan_history()
        assert [p.step for p in history] == [0, 1]

    def test_latest_plan_requires_history(self, system, dp_mesh, loader_handles):
        planner = make_planner(system, ClientPlaceTree(dp_mesh), loader_handles)
        with pytest.raises(PlanError):
            planner.instance().latest_plan()
        planner.call("generate_plan")
        assert planner.instance().latest_plan().step == 0


class TestMixtureAndScaling:
    def test_mixture_weights_recorded(self, system, dp_mesh, loader_handles, small_catalog):
        names = [h.instance().source.name for h in loader_handles]
        mixture = MixtureSchedule.uniform(names)
        planner = make_planner(system, ClientPlaceTree(dp_mesh), loader_handles, mixture=mixture)
        plan = planner.call("generate_plan")
        assert set(plan.mixture_weights) == set(names)

    def test_scaling_plan_piggybacked_on_weight_shift(
        self, system, dp_mesh, loader_handles, small_catalog
    ):
        names = [h.instance().source.name for h in loader_handles]
        hot = names[0]
        mixture = MixtureSchedule.staged(
            [
                MixturePhase(0, {name: 1.0 for name in names}),
                MixturePhase(5, {hot: 0.97, **{n: 0.01 for n in names[1:]}}),
            ]
        )
        partition = SourceAutoPartitioner().partition(
            small_catalog, ResourceBudget(cpu_cores=64, memory_bytes=64 * GIB)
        )
        scaler = MixtureDrivenScaler(partition, consecutive_intervals=2, window=3)
        planner = make_planner(
            system, ClientPlaceTree(dp_mesh), loader_handles, mixture=mixture, scaler=scaler
        )
        scaling_seen = False
        for step in range(15):
            plan = planner.call("generate_plan", step)
            if plan.scaling is not None and plan.scaling.for_source(hot):
                scaling_seen = True
                break
        assert scaling_seen


class TestFaultTolerance:
    def test_checkpoints_written_to_gcs(self, system, dp_mesh, loader_handles):
        planner = make_planner(system, ClientPlaceTree(dp_mesh), loader_handles)
        planner.call("generate_plan")
        planner.call("generate_plan")
        assert system.gcs.get("planner/last_step") == 1
        assert system.gcs.keys("planner/plan/") == ["planner/plan/0", "planner/plan/1"]

    def test_replay_from_gcs_resumes_step(self, system, dp_mesh, loader_handles):
        planner = make_planner(system, ClientPlaceTree(dp_mesh), loader_handles)
        for _ in range(3):
            planner.call("generate_plan")
        fresh = Planner(
            strategy=backbone_balance_strategy(StrategyConfig()),
            tree=ClientPlaceTree(dp_mesh),
            gcs=system.gcs,
        )
        assert fresh.replay_from_gcs() == 3

    def test_replay_without_gcs_keeps_step(self, dp_mesh):
        planner = Planner(
            strategy=backbone_balance_strategy(StrategyConfig()), tree=ClientPlaceTree(dp_mesh)
        )
        assert planner.replay_from_gcs() == 0

    def test_state_dict_roundtrip(self, system, dp_mesh, loader_handles):
        planner = make_planner(system, ClientPlaceTree(dp_mesh), loader_handles)
        planner.call("generate_plan")
        state = planner.instance().state_dict()
        fresh = Planner(
            strategy=backbone_balance_strategy(StrategyConfig()), tree=ClientPlaceTree(dp_mesh)
        )
        fresh.load_state_dict(state)
        assert fresh.heartbeat_payload()["step"] == 1


# -- columnar planning fast path --------------------------------------------------


def _random_buffer_infos(draw_spec):
    """Build per-source metadata lists from a hypothesis-drawn spec."""
    buffer_infos: dict[str, list[SampleMetadata]] = {}
    sample_id = 0
    for source_index, rows in enumerate(draw_spec):
        source = f"src{source_index:02d}"
        samples = []
        for text, image in rows:
            samples.append(
                SampleMetadata(
                    sample_id=sample_id,
                    source=source,
                    modality=Modality.IMAGE if image else Modality.TEXT,
                    text_tokens=text,
                    image_tokens=image,
                )
            )
            sample_id += 1
        buffer_infos[source] = samples
    return buffer_infos


buffer_specs = st.lists(
    st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=4096),
            st.integers(min_value=0, max_value=2048),
        ),
        min_size=1,
        max_size=24,
    ),
    min_size=1,
    max_size=5,
)


def _plan_signature(plan):
    """The byte-identity fields of a DGraphPlan/LoadingPlan module plan."""
    return (
        plan.source_demands,
        plan.mixture_weights,
        plan.fetching_ranks,
        plan.module.module,
        plan.module.axis,
        plan.module.num_buckets,
        plan.module.balance_method,
        plan.module.assignments,
        plan.api_costs,
        {name: _plan_signature(sub) for name, sub in plan.subplan.items()},
    )


class TestColumnarPlanEquivalence:
    """The fast path must emit byte-identical plans to the legacy row path."""

    @given(
        spec=buffer_specs,
        step=st.integers(min_value=0, max_value=50),
        seed=st.integers(min_value=0, max_value=10),
        strategy_name=st.sampled_from(["vanilla", "backbone_balance", "hybrid"]),
        balance_method=st.sampled_from(["greedy", "interleave"]),
        sample_count=st.one_of(st.none(), st.integers(min_value=1, max_value=40)),
        weight_seed=st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_columns_and_lists_emit_identical_plans(
        self, spec, step, seed, strategy_name, balance_method, sample_count, weight_seed
    ):
        buffer_infos = _random_buffer_infos(spec)
        # A deterministic "random" mixture over the drawn sources (some of
        # them possibly zero-weighted so whole pools drop out of the mix).
        # crc32, not hash(): PYTHONHASHSEED salting would make a falsifying
        # example irreproducible in another process.
        weights = {
            source: (zlib.crc32(f"{source}:{weight_seed}".encode()) % 7) / 7.0
            for source in buffer_infos
        }
        if all(weight == 0.0 for weight in weights.values()):
            weights[next(iter(weights))] = 1.0
        config = StrategyConfig(
            mixture=MixtureSchedule.static(weights),
            sample_count=sample_count,
            num_microbatches=2,
            balance_method=balance_method,
        )
        tree_rows = ClientPlaceTree(DeviceMesh(pp=1, dp=2, cp=1, tp=2, gpus_per_node=8))
        tree_cols = ClientPlaceTree(DeviceMesh(pp=1, dp=2, cp=1, tp=2, gpus_per_node=8))
        strategy_rows = make_strategy(strategy_name, config)
        strategy_cols = make_strategy(strategy_name, config)

        columns_infos = {
            source: SampleColumns.from_samples(samples)
            for source, samples in buffer_infos.items()
        }
        plan_rows = strategy_rows(buffer_infos, tree_rows, step, seed)
        plan_cols = strategy_cols(columns_infos, tree_cols, step, seed)
        assert _plan_signature(plan_cols) == _plan_signature(plan_rows)

    @given(
        steps=st.integers(min_value=2, max_value=6),
        seed=st.integers(min_value=0, max_value=3),
        consume=st.lists(st.integers(min_value=0, max_value=11), min_size=1, max_size=8),
    )
    @settings(max_examples=15, deadline=None)
    def test_planner_modes_identical_across_buffer_churn(self, steps, seed, consume):
        """Columnar and legacy planners agree step for step while loader
        buffers churn (prepares between plans), including a mid-run pristine
        replay that forces a delta-epoch resync."""
        filesystem = SimulatedFileSystem()
        catalog = build_source_catalog(
            navit_like_spec(num_sources=3, samples_per_source=48, seed=7), filesystem
        )
        mesh = DeviceMesh(pp=1, dp=4, cp=1, tp=1, gpus_per_node=4)

        def build(planning):
            system = ActorSystem(ClusterSpec(accelerator_nodes=1, cpu_pods=1))
            handles = []
            for index, source in enumerate(catalog.sources()):
                handles.append(
                    system.create_actor(
                        lambda src=source: SourceLoader(src, filesystem, buffer_size=16),
                        name=f"loader-{index}",
                        memory_bytes=GIB,
                    )
                )
            mixture = MixtureSchedule.uniform([h.instance().source.name for h in handles])
            planner = Planner(
                strategy=backbone_balance_strategy(
                    StrategyConfig(mixture=mixture, sample_count=8, num_microbatches=2)
                ),
                tree=ClientPlaceTree(mesh),
                mixture=mixture,
                seed=seed,
                planning=planning,
            )
            planner.register_loaders(handles)
            return system, planner, handles

        _, planner_cols, handles_cols = build("columnar")
        _, planner_rows, handles_rows = build("legacy")
        for step in range(steps):
            plan_cols = planner_cols.generate_plan(step)
            plan_rows = planner_rows.generate_plan(step)
            assert plan_cols.source_demands == plan_rows.source_demands
            assert plan_cols.mixture_weights == plan_rows.mixture_weights
            assert plan_cols.fetching_ranks == plan_rows.fetching_ranks
            for name, module in plan_cols.modules.items():
                assert module.assignments == plan_rows.modules[name].assignments
            # Churn both fleets identically: prepare a drawn subset of the
            # demanded ids (consuming them and triggering a refill).
            for h_cols, h_rows in zip(handles_cols, handles_rows):
                source = h_cols.instance().source.name
                ids = plan_cols.source_demands.get(source, [])
                picked = sorted({ids[c % len(ids)] for c in consume}) if ids else []
                if picked:
                    h_cols.call("prepare", picked)
                    h_cols.call("fetch_prepared", picked)
                    h_rows.call("prepare", picked)
                    h_rows.call("fetch_prepared", picked)
            if step == steps // 2:
                # Pristine replay (the failover bootstrap): new delta epoch on
                # one loader — the columnar gather must resync, not splice.
                for handle in (handles_cols[0], handles_rows[0]):
                    handle.call("reset_for_replay")
        # After the next gather the planner's columnar mirror is exactly each
        # loader's buffer — no stale rows, no duplicates, same order.
        planner_cols.gather_buffer_columns()
        for handle in handles_cols:
            cache = planner_cols._gather_caches[handle.name]
            assert cache.sample_ids() == [
                m.sample_id for m in handle.instance().summary_buffer()
            ]


class TestEmptyBufferBucketing:
    def test_empty_buffer_buckets_under_declared_source(self, system, filesystem, small_catalog, dp_mesh):
        """Regression: an empty loader must report under its *declared*
        source, not its actor name — one source can never split into a
        metadata-derived bucket and a name-derived one."""
        source = small_catalog.sources()[0]
        handles = [
            system.create_actor(
                lambda idx=index: SourceLoader(
                    source, filesystem, buffer_size=8, deferred_refill=True
                ),
                name=f"oddly-named-{index}",
                memory_bytes=GIB,
            )
            for index in range(2)
        ]
        # Drain the second loader completely; deferred_refill keeps it empty.
        loader = handles[1].instance()
        ids = [m.sample_id for m in loader.summary_buffer()]
        handles[1].call("prepare", ids)
        handles[1].call("fetch_prepared", ids)
        assert loader.buffer_depth() == 0

        for planning in ("legacy", "columnar"):
            planner = Planner(
                strategy=vanilla_strategy(StrategyConfig(num_microbatches=2)),
                tree=ClientPlaceTree(dp_mesh),
                planning=planning,
            )
            planner.register_loaders(handles)
            if planning == "legacy":
                infos, _ = planner.gather_buffer_metadata()
            else:
                infos, _ = planner.gather_buffer_columns()
            assert set(infos) == {source.name}, planning
            assert len(infos[source.name]) == 8
