"""Unit tests for the DGraph declarative orchestration abstraction."""

from __future__ import annotations

import pytest

from repro.core.dgraph import DGraph, metas_image, metas_text_only, metas_token
from repro.core.place_tree import ClientPlaceTree
from repro.data.mixture import MixtureSchedule
from repro.errors import OrchestrationError
from repro.parallelism.mesh import DeviceMesh


@pytest.fixture()
def buffer_infos(sample_factory):
    """Two sources: one text-only, one image-text."""
    text = [sample_factory(i, text_tokens=64 + i, source="text_src") for i in range(16)]
    image = [
        sample_factory(100 + i, text_tokens=32, image_tokens=256 * (i + 1), source="img_src")
        for i in range(16)
    ]
    return {"text_src": text, "img_src": image}


@pytest.fixture()
def tree(vlm_mesh):
    return ClientPlaceTree(vlm_mesh)


class TestConstruction:
    def test_from_buffer_infos_counts(self, buffer_infos):
        dgraph = DGraph.from_buffer_infos(buffer_infos, metas_token)
        assert len(dgraph.selected_samples) == 32
        assert len(dgraph.nodes) == 32

    def test_image_view_filters_text(self, buffer_infos):
        dgraph = DGraph.from_buffer_infos(buffer_infos, metas_image)
        assert len(dgraph.selected_samples) == 16
        assert all(s.image_tokens > 0 for s in dgraph.selected_samples)

    def test_text_only_view(self, buffer_infos):
        dgraph = DGraph.from_buffer_infos(buffer_infos, metas_text_only)
        assert all(s.image_tokens == 0 for s in dgraph.selected_samples)

    def test_flat_list_accepted(self, buffer_infos):
        flat = [s for samples in buffer_infos.values() for s in samples]
        dgraph = DGraph.from_buffer_infos(flat)
        assert len(dgraph.selected_samples) == 32

    def test_primitives_require_init(self, buffer_infos):
        dgraph = DGraph.from_buffer_infos(buffer_infos)
        with pytest.raises(OrchestrationError):
            dgraph.distribute("DP")


class TestPrimitives:
    def test_distribute_bucket_counts(self, buffer_infos, tree):
        dgraph = DGraph.from_buffer_infos(buffer_infos).init(tree)
        assert dgraph.distribute("DP").num_buckets == 2
        assert dgraph.distribute("CP").num_buckets == 4
        assert dgraph.distribute("WORLD").num_buckets == 16

    def test_distribute_group_size(self, buffer_infos, tree):
        dgraph = DGraph.from_buffer_infos(buffer_infos).init(tree)
        assert dgraph.distribute("WORLD", group_size=4).num_buckets == 4

    def test_distribute_invalid_axis(self, buffer_infos, tree):
        dgraph = DGraph.from_buffer_infos(buffer_infos).init(tree)
        with pytest.raises(OrchestrationError):
            dgraph.distribute("EP")

    def test_distribute_invalid_group_size(self, buffer_infos, tree):
        dgraph = DGraph.from_buffer_infos(buffer_infos).init(tree)
        with pytest.raises(OrchestrationError):
            dgraph.distribute("DP", group_size=0)

    def test_mix_respects_weights(self, buffer_infos, tree):
        schedule = MixtureSchedule.static({"text_src": 0.999, "img_src": 0.001})
        dgraph = DGraph.from_buffer_infos(buffer_infos).init(tree).with_step(0)
        dgraph.mix(schedule, sample_count=16)
        sources = [s.source for s in dgraph.selected_samples]
        assert sources.count("text_src") >= 14

    def test_mix_zero_weight_everywhere_rejected(self, buffer_infos, tree):
        schedule = MixtureSchedule.static({"other": 1.0})
        dgraph = DGraph.from_buffer_infos(buffer_infos).init(tree)
        with pytest.raises(OrchestrationError):
            dgraph.mix(schedule)

    def test_balance_requires_distribute(self, buffer_infos, tree):
        dgraph = DGraph.from_buffer_infos(buffer_infos).init(tree)
        with pytest.raises(OrchestrationError):
            dgraph.balance()

    def test_balance_reduces_imbalance(self, buffer_infos, tree):
        costfn = lambda m: float(m.total_tokens) ** 2
        balanced = (
            DGraph.from_buffer_infos(buffer_infos).init(tree).distribute("DP").cost(costfn)
        )
        balanced.balance(method="greedy", num_microbatches=4)
        plan_balanced = balanced.plan()

        unbalanced = DGraph.from_buffer_infos(buffer_infos).init(tree).distribute("DP")
        unbalanced._num_microbatches = 4
        plan_unbalanced = unbalanced.plan()

        def spread(plan):
            costs = [sum(float(s.total_tokens) ** 2 for s in a.samples) for a in plan.module.assignments]
            return max(costs) / max(1e-9, min(costs))

        assert spread(plan_balanced) < spread(plan_unbalanced)

    def test_balance_default_costfn_is_token_count(self, buffer_infos, tree):
        dgraph = DGraph.from_buffer_infos(buffer_infos).init(tree).distribute("DP")
        dgraph.balance(num_microbatches=2)
        plan = dgraph.plan()
        assert plan.module.balance_method == "greedy"

    def test_balance_without_intra_reorder_keeps_round_robin(self, buffer_infos, tree):
        dgraph = DGraph.from_buffer_infos(buffer_infos).init(tree).distribute("DP")
        dgraph.balance(num_microbatches=4, intra_microbatch_reorder=False)
        plan = dgraph.plan()
        assert len(plan.module.assignments) == 8

    def test_broadcast_at_excludes_clients(self, buffer_infos, tree):
        dgraph = DGraph.from_buffer_infos(buffer_infos).init(tree)
        dgraph.distribute("DP").balance(num_microbatches=2)
        dgraph.broadcast_at("TP")
        plan = dgraph.plan()
        assert len(plan.fetching_ranks) == tree.mesh.world_size // 2

    def test_invalid_microbatch_count(self, buffer_infos, tree):
        dgraph = DGraph.from_buffer_infos(buffer_infos).init(tree).distribute("DP")
        with pytest.raises(OrchestrationError):
            dgraph.balance(num_microbatches=0)


class TestPlan:
    def test_plan_covers_all_selected_samples(self, buffer_infos, tree):
        dgraph = DGraph.from_buffer_infos(buffer_infos).init(tree)
        dgraph.distribute("DP").balance(num_microbatches=4)
        plan = dgraph.plan()
        assert len(plan.module.all_sample_ids()) == 32
        assert sum(len(ids) for ids in plan.source_demands.values()) == 32

    def test_plan_without_balance_uses_arrival_order(self, buffer_infos, tree):
        dgraph = DGraph.from_buffer_infos(buffer_infos).init(tree)
        plan = dgraph.plan()
        assert plan.module.balance_method == "none"
        assert plan.module.num_buckets == 2

    def test_plan_api_costs_recorded(self, buffer_infos, tree):
        dgraph = DGraph.from_buffer_infos(buffer_infos).init(tree).distribute("DP")
        dgraph.cost(lambda m: float(m.total_tokens))
        dgraph.balance(num_microbatches=2)
        plan = dgraph.plan()
        assert plan.api_costs["cost"] > 0
        assert plan.api_costs["balance"] > 0

    def test_plan_raw_override(self, buffer_infos, tree):
        dgraph = DGraph.from_buffer_infos(buffer_infos).init(tree).distribute("DP")

        def assign(samples, buckets, microbatches):
            return [[list(samples)] if b == 0 else [[]] for b in range(buckets)]

        dgraph.plan_raw(assign)
        plan = dgraph.plan()
        assert plan.module.balance_method == "user"
        assert len(plan.module.bucket_assignments(0)[0].samples) == 32

    def test_plan_raw_wrong_bucket_count(self, buffer_infos, tree):
        dgraph = DGraph.from_buffer_infos(buffer_infos).init(tree).distribute("DP")
        with pytest.raises(OrchestrationError):
            dgraph.plan_raw(lambda samples, buckets, mb: [[list(samples)]])

    def test_summary_buffer_per_source(self, buffer_infos, tree):
        dgraph = DGraph.from_buffer_infos(buffer_infos).init(tree)
        summary = dgraph.summary_buffer()
        assert summary["text_src"]["count"] == 16
        assert summary["img_src"]["image_tokens"] > 0

    def test_lineage_tracks_states(self, buffer_infos, tree):
        dgraph = DGraph.from_buffer_infos(buffer_infos).init(tree)
        dgraph.distribute("DP").balance(num_microbatches=2)
        sample_id = dgraph.selected_samples[0].sample_id
        assert dgraph.lineage(sample_id) == ["buffered", "assigned"]

    def test_mix_then_balance_lineage(self, buffer_infos, tree):
        schedule = MixtureSchedule.uniform(["text_src", "img_src"])
        dgraph = DGraph.from_buffer_infos(buffer_infos).init(tree).with_step(1)
        dgraph.mix(schedule).distribute("DP").balance(num_microbatches=2)
        sample_id = dgraph.selected_samples[0].sample_id
        assert dgraph.lineage(sample_id) == ["buffered", "sampled", "assigned"]
        assert len(dgraph.edges) > 0

    def test_describe(self, buffer_infos, tree):
        dgraph = DGraph.from_buffer_infos(buffer_infos).init(tree).distribute("DP")
        assert "buckets=2" in dgraph.describe()
