"""Unit tests for the encoder/backbone cost models."""

from __future__ import annotations

import pytest

from repro.core.cost_model import (
    BackboneCostModel,
    CombinedVLMCostModel,
    EncoderCostModel,
    image_token_cost,
    quadratic_token_cost,
    token_count_cost,
)
from repro.training.models import llama_12b, mixtral_8x7b, vit_1b, vit_2b
from repro.training.simulator import GpuSpec


class TestEncoderCostModel:
    def test_cost_grows_superlinearly_with_patches(self, sample_factory):
        model = EncoderCostModel(vit_1b())
        small, _ = model(sample_factory(0, image_tokens=1024))
        large, _ = model(sample_factory(1, image_tokens=4096))
        assert large > 4 * small

    def test_larger_encoder_costs_more(self, sample_factory):
        metadata = sample_factory(0, image_tokens=2048)
        assert EncoderCostModel(vit_2b())(metadata)[0] > EncoderCostModel(vit_1b())(metadata)[0]

    def test_memory_component_positive(self, sample_factory):
        estimate = EncoderCostModel(vit_1b()).cost(sample_factory(0, image_tokens=128))
        assert estimate.memory > 0

    def test_inference_cheaper_than_training(self, sample_factory):
        metadata = sample_factory(0, image_tokens=1024)
        train, _ = EncoderCostModel(vit_1b(), training=True)(metadata)
        infer, _ = EncoderCostModel(vit_1b(), training=False)(metadata)
        assert infer < train


class TestBackboneCostModel:
    def test_cost_grows_with_tokens(self, sample_factory):
        model = BackboneCostModel(llama_12b())
        assert model(sample_factory(0, text_tokens=4096))[0] > model(sample_factory(1, text_tokens=512))[0]

    def test_model_parallel_shard_divides_latency(self, sample_factory):
        metadata = sample_factory(0, text_tokens=2048)
        full, _ = BackboneCostModel(llama_12b(), model_parallel_shard=1)(metadata)
        sharded, _ = BackboneCostModel(llama_12b(), model_parallel_shard=8)(metadata)
        assert sharded == pytest.approx(full / 8)

    def test_invalid_shard(self):
        with pytest.raises(ValueError):
            BackboneCostModel(llama_12b(), model_parallel_shard=0)

    def test_moe_backbone_supported(self, sample_factory):
        load, memory = BackboneCostModel(mixtral_8x7b())(sample_factory(0, text_tokens=1024))
        assert load > 0 and memory > 0

    def test_combined_model_sums_components(self, sample_factory):
        metadata = sample_factory(0, text_tokens=64, image_tokens=1024)
        encoder = EncoderCostModel(vit_1b())
        backbone = BackboneCostModel(llama_12b())
        combined = CombinedVLMCostModel(encoder, backbone)
        load, memory = combined(metadata)
        assert load == pytest.approx(encoder(metadata)[0] + backbone(metadata)[0])
        assert memory == pytest.approx(encoder(metadata)[1] + backbone(metadata)[1])


class TestSimpleCostFns:
    def test_token_count_cost(self, sample_factory):
        assert token_count_cost(sample_factory(0, text_tokens=10, image_tokens=5)) == (15.0, 15.0)

    def test_quadratic_token_cost(self, sample_factory):
        load, _ = quadratic_token_cost(sample_factory(0, text_tokens=10))
        assert load == 100.0

    def test_image_token_cost_ignores_text(self, sample_factory):
        load, _ = image_token_cost(sample_factory(0, text_tokens=100, image_tokens=4))
        assert load == 16.0

    def test_gpu_spec_affects_latency(self, sample_factory):
        metadata = sample_factory(0, text_tokens=1024)
        fast = BackboneCostModel(llama_12b(), gpu=GpuSpec(peak_flops=1e15))(metadata)[0]
        slow = BackboneCostModel(llama_12b(), gpu=GpuSpec(peak_flops=1e13))(metadata)[0]
        assert slow > fast


class TestCapacitySplitLaneModel:
    """Fair-share stretching of pool-amortised durations under contention."""

    def test_no_contention_is_amortized(self):
        from repro.core.cost_model import capacity_split_duration_s

        assert capacity_split_duration_s(2.0, 10.0, ()) == pytest.approx(2.0)
        # Lanes that already drained do not contend.
        assert capacity_split_duration_s(2.0, 10.0, (9.0, 10.0)) == pytest.approx(2.0)

    def test_full_overlap_splits_pool(self):
        from repro.core.cost_model import capacity_split_duration_s

        # One busy lane covering the whole chunk: half the pool -> 2x.
        assert capacity_split_duration_s(1.0, 0.0, (100.0,)) == pytest.approx(2.0)
        # Two busy lanes covering everything: a third of the pool -> 3x.
        assert capacity_split_duration_s(1.0, 0.0, (100.0, 100.0)) == pytest.approx(3.0)

    def test_partial_overlap_integrates_piecewise(self):
        from repro.core.cost_model import capacity_split_duration_s

        # Busy lane ends at t=1: first second at half speed (0.5 units of
        # work), remaining 0.5 units at full speed -> 1.5s total.
        assert capacity_split_duration_s(1.0, 0.0, (1.0,)) == pytest.approx(1.5)
        # Barely-overlapping lane stretches almost nothing (the naive xN
        # model would have doubled the whole chunk).
        assert capacity_split_duration_s(1.0, 0.0, (0.01,)) == pytest.approx(1.005)

    def test_work_conservation_pairwise(self):
        from repro.core.cost_model import capacity_split_duration_s

        # Ticket A booked alone for [0, 1]; ticket B arrives at 0 with the
        # same work: B finishes at 1.5 — together 2 units of work completed
        # by t=1.5 with a peak of 2 lanes, never exceeding pool capacity.
        a_end = capacity_split_duration_s(1.0, 0.0, ())
        b_duration = capacity_split_duration_s(1.0, 0.0, (a_end,))
        assert a_end == pytest.approx(1.0)
        assert b_duration == pytest.approx(1.5)

    def test_provider_lane_models(self):
        from repro.core.cost_model import DataPlaneLatencyProvider

        class FakeLoader:
            role = "source_loader"

        result = {"chunk_wall_clock_s": 1.0}
        split = DataPlaneLatencyProvider(lane_model="capacity_split")
        amortized = DataPlaneLatencyProvider(lane_model="amortized")
        assert split.wants_lane_context
        assert split.call_duration_s(
            FakeLoader(), "poll", result, busy_lanes=2, start_s=0.0, lane_ends_s=(50.0,)
        ) == pytest.approx(2.0)
        assert amortized.call_duration_s(
            FakeLoader(), "poll", result, busy_lanes=2, start_s=0.0, lane_ends_s=(50.0,)
        ) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            DataPlaneLatencyProvider(lane_model="bogus")
