"""Integration tests: loader failures injected mid-prefetch.

The asynchronous pipeline keeps several future steps in flight, so a Source
Loader can die while its work for a prefetched step is queued or partially
executed.  Recovery must (a) keep delivering steps in order, (b) neither drop
nor duplicate any sample, and (c) reproduce the exact delivery sequence of a
failure-free synchronous run (deterministic replay, Sec. 6.1).
"""

from __future__ import annotations

import pytest

from repro.core.framework import MegaScaleData, TrainingJobSpec


def make_job(prefetch_depth: int, shadows: bool, seed: int) -> TrainingJobSpec:
    return TrainingJobSpec(
        pp=1, dp=2, cp=1, tp=1, encoder=None, strategy="backbone_balance",
        samples_per_dp_step=4, num_microbatches=2, num_sources=3,
        samples_per_source=64, seed=seed, prefetch_depth=prefetch_depth,
        enable_shadow_loaders=shadows,
    )


def delivery_signature(result):
    return {
        rank: [
            (piece.rank, piece.microbatch_index, piece.token_count, piece.payload_bytes)
            for piece in delivery.slices
        ]
        for rank, delivery in sorted(result.deliveries.items())
    }


def delivered_sample_ids(result):
    """Every sample id the step's plan demanded, per source."""
    return sorted(sid for ids in result.plan.source_demands.values() for sid in ids)


@pytest.mark.parametrize("shadows,expected_kind", [(True, "shadow_promotion"), (False, "restart")])
def test_loader_failure_mid_prefetch_preserves_sequence(shadows, expected_kind):
    seed = 3 if shadows else 5
    reference = MegaScaleData.deploy(make_job(0, shadows=False, seed=seed))
    system = MegaScaleData.deploy(make_job(2, shadows=shadows, seed=seed))
    try:
        reference_steps = [reference.run_step() for _ in range(6)]
        results = [system.run_step()]

        # Steps 1-2 are already prefetched; the failure lands on the next
        # step's in-flight loader work.
        victim = system.loader_handles[0]
        system.system.failures.fail(victim.name)
        results.extend(system.run_step() for _ in range(5))

        # Recovery happened through the fault-tolerance manager.
        kinds = [event.kind for event in system.fault_manager.events()]
        assert expected_kind in kinds

        # Step ordering is preserved.
        assert [r.step for r in results] == [0, 1, 2, 3, 4, 5]

        # No sample dropped or duplicated: each step demanded distinct
        # samples, and the overall sequence matches the failure-free run.
        for ref_result, got in zip(reference_steps, results):
            ids = delivered_sample_ids(got)
            assert len(ids) == len(set(ids))
            assert ids == delivered_sample_ids(ref_result)
            assert delivery_signature(got) == delivery_signature(ref_result)
    finally:
        reference.shutdown()
        system.shutdown()


def test_failure_during_plan_gather_recovers():
    """A loader that dies before the Planner's buffer gather is re-planned around."""
    seed = 11
    reference = MegaScaleData.deploy(make_job(0, shadows=False, seed=seed))
    system = MegaScaleData.deploy(make_job(1, shadows=True, seed=seed))
    try:
        reference_steps = [reference.run_step() for _ in range(4)]
        results = [system.run_step(), system.run_step()]
        # Kill the loader outright so even the planner's summary gather fails.
        victim = system.loader_handles[-1]
        victim.kill()
        results.extend(system.run_step() for _ in range(2))
        assert [r.step for r in results] == [0, 1, 2, 3]
        assert any(e.kind in ("shadow_promotion", "restart") for e in system.fault_manager.events())
        for ref_result, got in zip(reference_steps, results):
            assert delivery_signature(got) == delivery_signature(ref_result)
    finally:
        reference.shutdown()
        system.shutdown()


def test_checkpointed_loader_failure_stays_byte_identical():
    """Regression: a restored cursor checkpoint must not double-advance the
    replacement's buffer on top of the deterministic plan replay."""
    seed = 9
    reference = MegaScaleData.deploy(make_job(0, shadows=False, seed=seed))
    system = MegaScaleData.deploy(make_job(2, shadows=True, seed=seed))
    try:
        reference_steps = [reference.run_step() for _ in range(8)]
        results = [system.run_step() for _ in range(2)]
        victim = system.loader_handles[0]
        system.fault_manager.checkpoint_loader(victim, step=1)
        system.system.failures.fail(victim.name)
        results.extend(system.run_step() for _ in range(6))
        for ref_result, got in zip(reference_steps, results):
            assert delivery_signature(got) == delivery_signature(ref_result)
    finally:
        reference.shutdown()
        system.shutdown()


def test_reshard_flush_keeps_plan_history_replayable():
    """Regression: flushed prefetched plans must leave the Planner history
    monotone/unique and loaders replayable, so a failure after a reshard
    still recovers deterministically."""
    from repro.core.resharding import ReshardNotification
    from repro.parallelism.mesh import DeviceMesh

    def scenario():
        system = MegaScaleData.deploy(make_job(2, shadows=True, seed=7))
        try:
            system.run_step()
            system.run_step()
            system.handle_reshard(
                ReshardNotification(step=2, new_mesh=DeviceMesh(pp=1, dp=2, cp=1, tp=2))
            )
            system.run_step()
            system.system.failures.fail(system.loader_handles[0].name)
            outputs = [delivery_signature(system.run_step()) for _ in range(3)]
            history = [plan.step for plan in system.planner_handle.instance().plan_history()]
            return outputs, history
        finally:
            system.shutdown()

    outputs_a, history_a = scenario()
    outputs_b, history_b = scenario()
    assert history_a == sorted(set(history_a))  # no duplicated steps after flush
    assert outputs_a == outputs_b  # recovery after reshard is deterministic
    assert history_a == history_b


def test_recovered_loader_serves_subsequent_prefetch():
    """After failover the promoted loader participates in later prefetched steps."""
    system = MegaScaleData.deploy(make_job(2, shadows=True, seed=7))
    try:
        system.run_step()
        victim = system.loader_handles[1]
        victim_source = victim.instance().source.name
        system.system.failures.fail(victim.name)
        results = [system.run_step() for _ in range(4)]
        promoted = system.loader_handles[1]
        assert promoted.name != victim.name  # the shadow took over
        assert promoted.instance().source.name == victim_source
        # The promoted loader keeps serving that source's demands.
        served_after = sum(
            len(r.plan.source_demands.get(victim_source, [])) for r in results[-2:]
        )
        assert served_after > 0
        assert all(r.deliveries for r in results)
    finally:
        system.shutdown()
