"""Unit tests for the SQLite KV store's batched writes and pragmas."""

from __future__ import annotations

from repro.core.checkpoint import SqliteCheckpointStore
from repro.storage.filesystem import SimulatedFileSystem
from repro.storage.kvstore import SqliteKVStore


class TestPragmas:
    def test_file_backed_store_uses_wal(self, tmp_path):
        store = SqliteKVStore(str(tmp_path / "ckpt.db"))
        mode = store._conn.execute("PRAGMA journal_mode").fetchone()[0]
        sync = store._conn.execute("PRAGMA synchronous").fetchone()[0]
        assert mode == "wal"
        assert sync == 1  # NORMAL
        store.close()

    def test_memory_store_still_works(self):
        store = SqliteKVStore()
        store.put("ns", 1, b"x")
        assert store.get("ns", 1) == b"x"
        store.close()


class TestPutMany:
    def test_batch_round_trips(self):
        store = SqliteKVStore()
        store.put_many([("a", 1, b"one"), ("a", 2, b"two"), ("b", 1, b"uno")])
        assert store.get("a", 1) == b"one"
        assert store.get("a", 2) == b"two"
        assert store.get("b", 1) == b"uno"
        assert store.steps("a") == [1, 2]
        store.close()

    def test_batch_replaces_existing(self):
        store = SqliteKVStore()
        store.put("a", 1, b"old")
        store.put_many([("a", 1, b"new")])
        assert store.get("a", 1) == b"new"
        store.close()

    def test_empty_batch_is_noop(self):
        store = SqliteKVStore()
        store.put_many([])
        assert store.steps("a") == []
        store.close()

    def test_batch_is_one_transaction(self, tmp_path):
        # Verified behaviourally: after put_many, no transaction is open
        # (commit happened) and every row is visible to a fresh connection.
        path = str(tmp_path / "batch.db")
        store = SqliteKVStore(path)
        store.put_many([("ns", step, bytes([step])) for step in range(8)])
        assert store._conn.in_transaction is False
        other = SqliteKVStore(path)
        assert other.steps("ns") == list(range(8))
        store.close()
        other.close()

    def test_batch_mirrors_filesystem_accounting(self):
        fs = SimulatedFileSystem()
        store = SqliteKVStore(filesystem=fs)
        store.put_many([("ns", 1, b"abc"), ("ns", 2, b"defgh")])
        assert fs.exists("/checkpoints/ns/1")
        assert fs.exists("/checkpoints/ns/2")


class TestCheckpointStoreSaveMany:
    def test_sqlite_save_many_round_trips(self):
        store = SqliteCheckpointStore()
        store.save_many([("loader/a", 4, {"v": 1}), ("loader/b", 4, {"v": 2})])
        assert store.load("loader/a", 4) == {"v": 1}
        assert store.load_latest("loader/b") == (4, {"v": 2})

    def test_interface_default_falls_back_to_save(self):
        from repro.core.checkpoint import InMemoryCheckpointStore

        store = InMemoryCheckpointStore()
        store.save_many([("ns", 1, "x"), ("ns", 2, "y")])
        assert store.steps("ns") == [1, 2]
        assert store.load("ns", 2) == "y"
