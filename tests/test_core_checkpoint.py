"""Durable control-plane checkpoints and bounded-replay recovery.

Covers the PR's tentpole — pluggable :class:`CheckpointStore` backends, the
Planner's bounded plan window, and whole-run ``save_checkpoint``/``restore``
with byte-identical continuation — plus the elasticity bug backlog that rides
along: ``target_workers_per_actor`` application, the reservation queue for
rejected placements, and hot-standby promotion of fleet mirrors.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.checkpoint import (
    CheckpointError,
    InMemoryCheckpointStore,
    SqliteCheckpointStore,
)
from repro.core.fault_tolerance import FaultToleranceConfig, FaultToleranceManager
from repro.core.framework import RUN_NAMESPACE, MegaScaleData, TrainingJobSpec
from repro.core.planner import PLAN_NAMESPACE
from repro.core.plans import LoaderScalingDirective, ScalingPlan
from repro.core.source_loader import SourceLoader
from repro.data.mixture import MixturePhase, MixtureSchedule
from repro.errors import ConfigurationError
from repro.utils.units import GIB


def make_job(prefetch_depth: int = 0, seed: int = 11, **overrides) -> TrainingJobSpec:
    spec = dict(
        pp=1, dp=2, cp=1, tp=1, encoder=None, strategy="backbone_balance",
        samples_per_dp_step=4, num_microbatches=2, num_sources=3,
        samples_per_source=64, seed=seed, prefetch_depth=prefetch_depth,
    )
    spec.update(overrides)
    return TrainingJobSpec(**spec)


def delivery_signature(result):
    """Byte-level signature of a step's per-rank deliveries."""
    return {
        rank: [
            (piece.rank, piece.microbatch_index, piece.token_count,
             piece.payload_bytes, piece.metadata_only, piece.replicated_from)
            for piece in delivery.slices
        ]
        for rank, delivery in sorted(result.deliveries.items())
    }


def run_signature(system, steps):
    """Demands + delivery signatures for the next ``steps`` steps."""
    trace = []
    for _ in range(steps):
        result = system.run_step()
        trace.append((result.step, result.plan.source_demands, delivery_signature(result)))
    return trace


# -- checkpoint store backends ------------------------------------------------------


@pytest.fixture(params=["memory", "sqlite"])
def store(request):
    if request.param == "memory":
        yield InMemoryCheckpointStore()
    else:
        backend = SqliteCheckpointStore()
        yield backend
        backend.close()


class TestCheckpointStores:
    def test_save_load_latest_roundtrip(self, store):
        assert store.load_latest("ns") is None
        assert store.load("ns", 0) is None
        for step in (0, 5, 10):
            store.save("ns", step, {"step": step})
        assert store.steps("ns") == [0, 5, 10]
        assert store.load("ns", 5) == {"step": 5}
        assert store.load_latest("ns") == (10, {"step": 10})
        assert store.load_latest("ns", max_step=9) == (5, {"step": 5})
        assert store.load_latest("ns", max_step=4) == (0, {"step": 0})
        assert store.load_latest("other") is None

    def test_overwrite_replaces_payload(self, store):
        store.save("ns", 3, "old")
        store.save("ns", 3, "new")
        assert store.steps("ns") == [3]
        assert store.load("ns", 3) == "new"

    def test_delete_from_and_prune_below(self, store):
        for step in range(6):
            store.save("ns", step, step)
        assert store.delete_from("ns", 4) == 2
        assert store.steps("ns") == [0, 1, 2, 3]
        assert store.prune_below("ns", 2) == 2
        assert store.steps("ns") == [2, 3]
        store.clear()
        assert store.steps("ns") == []

    def test_namespaces_are_isolated(self, store):
        store.save("a", 0, "a0")
        store.save("b", 0, "b0")
        store.delete_from("a", 0)
        assert store.load("b", 0) == "b0"
        assert store.load("a", 0) is None

    def test_sqlite_pickles_real_control_plane_payloads(self, filesystem, small_catalog):
        """Loader replay snapshots and generated plans survive the durable
        medium byte-for-byte — the contract the in-memory backend skips."""
        backend = SqliteCheckpointStore()
        loader = SourceLoader(small_catalog.sources()[0], filesystem, buffer_size=8)
        loader.on_start()
        snapshot = loader.replay_checkpoint()
        backend.save("loader/test", 0, snapshot)
        restored = backend.load("loader/test", 0)
        assert restored is not snapshot
        assert restored["cursor"] == snapshot["cursor"]
        assert [m.sample_id for m in restored["buffer"]] == [
            m.sample_id for m in snapshot["buffer"]
        ]
        fresh = SourceLoader(small_catalog.sources()[0], filesystem, buffer_size=8)
        fresh.on_start()
        fresh.restore_replay_checkpoint(restored)
        assert [m.sample_id for m in fresh.summary_buffer()] == [
            m.sample_id for m in loader.summary_buffer()
        ]
        backend.close()

    def test_sqlite_rejects_unpicklable_payload(self):
        backend = SqliteCheckpointStore()
        with pytest.raises(CheckpointError):
            backend.save("ns", 0, {"callback": lambda: None})
        backend.close()

    def test_sqlite_mirrors_bytes_into_filesystem(self, filesystem):
        backend = SqliteCheckpointStore(filesystem=filesystem)
        backend.save("planner/plans", 7, {"step": 7})
        objects = [
            path for path in filesystem.listdir("/checkpoints") if "checkpoints" in path
        ]
        assert objects
        assert filesystem.stat(objects[0]).size_bytes > 0
        backend.close()


# -- planner bounded plan window ----------------------------------------------------


class TestPlannerBoundedWindow:
    def test_memory_window_trims_but_store_keeps_everything(self):
        system = MegaScaleData.deploy(make_job(replay_window=4, checkpoint_backend="sqlite"))
        try:
            for _ in range(10):
                system.run_step()
            planner = system.planner_handle.instance()
            # In-memory history is bounded by the replay window...
            assert len(planner._plan_history) <= 4
            # ...but the durable store holds the full run,
            assert system.checkpoint_store.steps(PLAN_NAMESPACE) == list(range(10))
            # and history queries transparently merge the persisted prefix.
            assert [p.step for p in planner.plan_history()] == list(range(10))
            assert [p.step for p in planner.plans_since(6)] == [7, 8, 9]
        finally:
            system.shutdown()

    def test_replay_from_gcs_restores_bounded_suffix(self):
        system = MegaScaleData.deploy(make_job(replay_window=4, checkpoint_backend="memory"))
        try:
            for _ in range(10):
                system.run_step()
            planner = system.planner_handle.instance()
            planner._plan_history = []
            resume_at = planner.replay_from_gcs()
            assert resume_at == 10
            # Bounded: the restart rehydrates at most the window, not the run.
            assert [p.step for p in planner._plan_history] == [6, 7, 8, 9]
        finally:
            system.shutdown()

    def test_truncate_history_drops_store_suffix_too(self):
        system = MegaScaleData.deploy(make_job(replay_window=4, checkpoint_backend="memory"))
        try:
            for _ in range(6):
                system.run_step()
            planner = system.planner_handle.instance()
            planner.truncate_history(3)
            assert system.checkpoint_store.steps(PLAN_NAMESPACE) == [0, 1, 2]
            assert [p.step for p in planner.plan_history()] == [0, 1, 2]
        finally:
            system.shutdown()


# -- satellite: target_workers_per_actor is applied ---------------------------------


class TestWorkerResizeDirective:
    def test_worker_directive_resizes_pool_and_reservation(self):
        """Regression: a directive whose only change is
        ``target_workers_per_actor`` used to be silently ignored."""
        system = MegaScaleData.deploy(make_job())
        try:
            source = "navit_data/src000"
            planner = system.planner_handle.instance()
            group = system.fleet._by_source[source][0]
            old_workers = group.workers_per_actor
            node_free = {n.name: n.available_cpu for n in system.system.nodes}
            plan = ScalingPlan(
                step=1,
                directives=[
                    LoaderScalingDirective(
                        source=source,
                        target_actors=system.fleet.member_count(source),
                        target_workers_per_actor=old_workers + 2,
                    )
                ],
            )
            system.fleet.apply_scaling(plan, step=1, planner=planner)
            # The loader's transform pool actually grew...
            assert group.canonical.instance().num_workers == old_workers + 2
            assert group.workers_per_actor == old_workers + 2
            # ...and the node re-booked two more cores for it.
            node = system.system.actor_node(group.canonical.name)
            booked = {
                n.name: node_free[n.name] - n.available_cpu for n in system.system.nodes
            }
            assert booked[node] == pytest.approx(2.0)
            resizes = [c for c in system.fleet.changes if c.kind == "resize"]
            assert resizes and f"{old_workers} -> {old_workers + 2}" in resizes[-1].detail
            # Shrinking back releases the reservation again.
            system.fleet.resize_workers(source, old_workers, step=2)
            assert group.canonical.instance().num_workers == old_workers
            assert all(
                n.available_cpu == pytest.approx(node_free[n.name])
                for n in system.system.nodes
            )
        finally:
            system.shutdown()

    def test_resize_rejection_keeps_old_pool(self):
        system = MegaScaleData.deploy(make_job())
        try:
            source = "navit_data/src000"
            group = system.fleet._by_source[source][0]
            old_workers = group.workers_per_actor
            for node in system.system.nodes:
                node.reserve("filler", node.available_cpu - 0.25, 0)
            assert not system.fleet.resize_workers(source, old_workers + 8, step=1)
            assert group.canonical.instance().num_workers == old_workers
            rejected = [
                c for c in system.fleet.changes
                if c.kind == "resize" and "rejected" in c.detail
            ]
            assert rejected
        finally:
            system.shutdown()

    def test_new_mirrors_inherit_resized_pool(self):
        system = MegaScaleData.deploy(make_job())
        try:
            source = "navit_data/src000"
            planner = system.planner_handle.instance()
            group = system.fleet._by_source[source][0]
            target = group.workers_per_actor + 1
            system.fleet.resize_workers(source, target, step=0)
            mirror = system.fleet.spawn_member(source, step=1, planner=planner)
            assert mirror is not None
            assert mirror.instance().num_workers == target
        finally:
            system.shutdown()


# -- satellite: reservation queue for rejected placements ---------------------------


class TestReservationQueue:
    def test_rejected_spawn_queues_and_fires_when_capacity_frees(self):
        system = MegaScaleData.deploy(make_job())
        try:
            source = "navit_data/src000"
            planner = system.planner_handle.instance()
            before = system.fleet.member_count(source)
            filler = {n.name: n.available_cpu - 0.25 for n in system.system.nodes}
            for node in system.system.nodes:
                node.reserve("filler", filler[node.name], 0)
            plan = ScalingPlan(
                step=1,
                directives=[
                    LoaderScalingDirective(
                        source=source, target_actors=before + 1,
                        target_workers_per_actor=0,
                    )
                ],
            )
            system.fleet.apply_scaling(plan, step=1, planner=planner)
            assert system.fleet.member_count(source) == before
            assert system.fleet.rejection_count() >= 1
            assert system.fleet.pending_spawn_count(source) == 1
            # Still no capacity: the retry is a quiet probe, not a new reject.
            rejects_before = system.fleet.rejection_count()
            assert system.fleet.retry_pending_spawns(2, planner) == 0
            assert system.fleet.rejection_count() == rejects_before
            # A drain-retire elsewhere frees the node: the queued reservation
            # fires with no fresh directive.
            for node in system.system.nodes:
                node.release("filler", filler[node.name], 0)
            assert system.fleet.retry_pending_spawns(3, planner) == 1
            assert system.fleet.member_count(source) == before + 1
            assert system.fleet.pending_spawn_count() == 0
        finally:
            system.shutdown()

    def test_run_step_retries_pending_spawns_after_capacity_frees(self):
        """The integrated path: the step boundary drains the queue once a
        blocked node frees up, without the scaler re-issuing anything."""
        system = MegaScaleData.deploy(make_job())
        try:
            source = "navit_data/src001"
            planner = system.planner_handle.instance()
            before = system.fleet.member_count(source)
            filler = {n.name: n.available_cpu - 0.25 for n in system.system.nodes}
            for node in system.system.nodes:
                node.reserve("filler", filler[node.name], 0)
            system.fleet.apply_scaling(
                ScalingPlan(
                    step=0,
                    directives=[
                        LoaderScalingDirective(
                            source=source, target_actors=before + 1,
                            target_workers_per_actor=0,
                        )
                    ],
                ),
                step=0,
                planner=planner,
            )
            assert system.fleet.pending_spawn_count(source) == 1
            system.run_step()  # saturated: queue survives the boundary
            assert system.fleet.pending_spawn_count(source) == 1
            for node in system.system.nodes:
                node.release("filler", filler[node.name], 0)
            system.run_step()  # freed: boundary fires the queued spawn
            assert system.fleet.pending_spawn_count() == 0
            assert system.fleet.member_count(source) == before + 1
        finally:
            system.shutdown()


# -- satellite: hot-standby promotion of fleet mirrors ------------------------------


class TestHotStandbyPromotion:
    def test_canonical_failure_promotes_mirror_with_zero_replay(self):
        """A failed canonical whose group holds a live mirror adopts it in
        place — no restart, no replay — and the delivered batches stay
        byte-identical to an undisturbed run."""
        reference = MegaScaleData.deploy(make_job())
        system = MegaScaleData.deploy(make_job())
        try:
            source = "navit_data/src000"
            for peer in (reference, system):
                peer.run_step()
                peer.scale_source(source, 2)
            canonical = system.fleet._by_source[source][0].canonical
            mirror = system.fleet.standby_mirror(canonical.name)
            assert mirror is not None
            reference.scale_source(source, 1)  # keep fleets same-shaped logically
            reference.run_step()
            system.system.failures.fail(canonical.name)
            result = system.run_step()
            # Recovery chose promotion, not restart-and-replay.
            events = system.fault_manager.events()
            assert events and events[-1].kind == "mirror_promotion"
            promotions = [c for c in system.fleet.changes if c.kind == "promote"]
            assert promotions and promotions[-1].actor == mirror.name
            # The promoted mirror is now the planner-visible canonical.
            assert system.fleet._by_source[source][0].canonical.name == mirror.name
            assert any(h.name == mirror.name for h in system.loader_handles)
            assert all(h.name != canonical.name for h in system.loader_handles)
            # Behaviour-invisible: same batches as the undisturbed twin.
            expected = reference.history()[-1]
            assert result.plan.source_demands == expected.plan.source_demands
            assert delivery_signature(result) == delivery_signature(expected)
            for _ in range(3):
                a = reference.run_step()
                b = system.run_step()
                assert delivery_signature(a) == delivery_signature(b)
        finally:
            reference.shutdown()
            system.shutdown()

    def test_failed_mirror_still_restarts_without_promotion(self):
        """Promotion is canonical-only: a dead mirror is replaced inside its
        group via bounded replay, leaving the canonical untouched."""
        system = MegaScaleData.deploy(make_job())
        try:
            source = "navit_data/src000"
            system.run_step()
            system.scale_source(source, 2)
            canonical = system.fleet._by_source[source][0].canonical
            mirror = system.fleet.standby_mirror(canonical.name)
            system.system.failures.fail(mirror.name)
            system.run_step()
            assert system.fleet._by_source[source][0].canonical.name == canonical.name
            assert not any(c.kind == "promote" for c in system.fleet.changes)
        finally:
            system.shutdown()


# -- tentpole: whole-run save/restore with bounded replay ---------------------------


class TestWholeRunRestore:
    @pytest.mark.parametrize("planning", ["columnar", "legacy"])
    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    def test_continuation_byte_identical(self, planning, backend):
        job = make_job(prefetch_depth=2, planning=planning, checkpoint_backend=backend)
        reference = MegaScaleData.deploy(make_job(prefetch_depth=2, planning=planning))
        system = MegaScaleData.deploy(job)
        store = system.checkpoint_store
        try:
            expected = run_signature(reference, 10)
            prefix = run_signature(system, 6)
            saved_at = system.save_checkpoint()
            assert saved_at == 6
            system.shutdown()
            system = MegaScaleData.restore(job, store)
            suffix = run_signature(system, 4)
            assert prefix + suffix == expected
        finally:
            reference.shutdown()
            system.shutdown()

    def test_restore_requires_a_saved_checkpoint(self):
        with pytest.raises(ConfigurationError):
            MegaScaleData.restore(make_job(), InMemoryCheckpointStore())

    def test_restore_rebuilds_fleet_topology(self):
        """Mirrors and worker sizing survive the round trip: the restored
        fleet has the saved shape without replaying any scaling directive."""
        job = make_job()
        system = MegaScaleData.deploy(job)
        store = system.checkpoint_store
        source = "navit_data/src000"
        try:
            system.run_step()
            system.scale_source(source, 2)
            group = system.fleet._by_source[source][0]
            system.fleet.resize_workers(source, group.workers_per_actor + 1, step=1)
            workers = group.workers_per_actor
            system.run_step()
            system.save_checkpoint()
            system.shutdown()
            system = MegaScaleData.restore(job, store)
            assert system.fleet.member_count(source) == 2
            restored_group = system.fleet._by_source[source][0]
            assert restored_group.workers_per_actor == workers
            assert restored_group.canonical.instance().num_workers == workers
            # And the restored members carry a consistent replay baseline, so
            # a post-restore crash keeps bounded replay.
            for handle in system.fleet.all_handles():
                entry = system.fault_manager.last_loader_checkpoint(
                    handle.name, consistent=True
                )
                assert entry is not None and "replay" in entry
        finally:
            system.shutdown()

    def test_restore_preserves_user_mixture(self):
        mixture = MixtureSchedule.staged(
            [
                MixturePhase(0, {"navit_data/src000": 0.7, "navit_data/src001": 0.2,
                                 "navit_data/src002": 0.1}),
                MixturePhase(4, {"navit_data/src000": 0.1, "navit_data/src001": 0.3,
                                 "navit_data/src002": 0.6}),
            ]
        )
        job = make_job(mixture=mixture)
        reference = MegaScaleData.deploy(make_job(mixture=mixture))
        system = MegaScaleData.deploy(job)
        store = system.checkpoint_store
        try:
            expected = run_signature(reference, 8)
            prefix = run_signature(system, 3)
            system.save_checkpoint()
            system.shutdown()
            system = MegaScaleData.restore(job, store)
            planner = system.planner_handle.instance()
            assert planner.mixture.description == mixture.description
            assert planner.mixture.weights_at(5) == mixture.weights_at(5)
            suffix = run_signature(system, 5)
            assert prefix + suffix == expected
        finally:
            reference.shutdown()
            system.shutdown()

    def test_post_restore_crash_uses_bounded_replay(self):
        """After a restore, a loader crash recovers from the forced baseline
        checkpoint — it never replays the pre-restore plan history."""
        job = make_job(replay_window=3)
        system = MegaScaleData.deploy(job)
        store = system.checkpoint_store
        try:
            for _ in range(6):
                system.run_step()
            system.save_checkpoint()
            system.shutdown()
            system = MegaScaleData.restore(job, store)
            reference = MegaScaleData.deploy(make_job(replay_window=3))
            for _ in range(7):
                reference.run_step()
            system.run_step()
            victim = system.loader_handles[0]
            system.system.failures.fail(victim.name)
            a = system.run_step()
            b = reference.run_step()
            assert delivery_signature(a) == delivery_signature(b)
            event = system.fault_manager.events()[-1]
            assert event.kind in ("restart", "shadow_promotion")
            # Bounded: the replay charge covers a suffix, not the whole run.
            assert event.recovery_latency_s < (
                system.fault_manager.config.coordinator_restart_latency_s
                + 8 * system.fault_manager.config.replay_latency_per_step_s
            )
            reference.shutdown()
        finally:
            system.shutdown()


# -- property: crash + restore is invisible, under any planning/elastic mix ---------


@given(
    seed=st.integers(min_value=0, max_value=15),
    planning=st.sampled_from(["columnar", "legacy"]),
    depth=st.sampled_from([0, 2]),
    crash_step=st.integers(min_value=4, max_value=6),
    elastic_event=st.sampled_from(["none", "up", "up_down"]),
)
@settings(max_examples=6, deadline=None)
def test_crash_restore_continuation_byte_identical(
    seed, planning, depth, crash_step, elastic_event
):
    """The durability contract: for any seed, planning mode, prefetch depth
    and mid-run fleet churn, killing the whole deployment after
    ``save_checkpoint`` and restoring from the store continues the run with
    batches byte-identical to the uninterrupted twin."""

    def deploy(job):
        return MegaScaleData.deploy(job)

    def drive(system, start, stop):
        trace = []
        for step in range(start, stop):
            if elastic_event != "none" and step == 1:
                system.scale_source("navit_data/src000", 2)
            if elastic_event == "up_down" and step == 3:
                system.scale_source("navit_data/src000", 1)
            result = system.run_step()
            trace.append((result.step, result.plan.source_demands,
                          delivery_signature(result)))
        return trace

    job = make_job(prefetch_depth=depth, seed=seed, planning=planning)
    reference = deploy(make_job(prefetch_depth=depth, seed=seed, planning=planning))
    system = deploy(job)
    store = system.checkpoint_store
    try:
        expected = drive(reference, 0, 10)
        prefix = drive(system, 0, crash_step)
        system.save_checkpoint()
        system.shutdown()
        system = MegaScaleData.restore(job, store)
        suffix = drive(system, crash_step, 10)
        assert prefix + suffix == expected
    finally:
        reference.shutdown()
        system.shutdown()


# -- satellite: delta-log epoch resync after restore --------------------------------


class TestDeltaEpochResync:
    def test_restored_loader_forces_gather_resync(self, filesystem, small_catalog):
        """A consumer holding a pre-restore (epoch, seq) position must get a
        full snapshot, never a splice of stale events across incarnations."""
        loader = SourceLoader(small_catalog.sources()[0], filesystem, buffer_size=8)
        loader.on_start()
        first = loader.buffer_delta(0, 0)
        assert first["resync"] is True
        epoch, seq = first["epoch"], first["seq"]
        ids = [m.sample_id for m in loader.summary_buffer()[:2]]
        loader.prepare(ids)
        delta = loader.buffer_delta(epoch, seq)
        assert delta["resync"] is False
        assert [op for op, _ in delta["events"]].count("del") >= 2
        snapshot = loader.replay_checkpoint()
        loader.restore_replay_checkpoint(snapshot)
        resync = loader.buffer_delta(epoch, delta["seq"])
        assert resync["resync"] is True
        assert [m.sample_id for m in resync["buffer"]] == [
            m.sample_id for m in loader.summary_buffer()
        ]

    def test_stale_seq_past_capped_log_resyncs(self, filesystem, small_catalog):
        """When the retained delta log was truncated past the consumer's
        position (cap overflow drops the log), the gather degenerates to a
        snapshot instead of silently losing mutations."""
        loader = SourceLoader(small_catalog.sources()[0], filesystem, buffer_size=8)
        loader.on_start()
        first = loader.buffer_delta(0, 0)
        epoch, stale_seq = first["epoch"], first["seq"]
        # Overflow the capped log without ever gathering: the loader drops
        # the backlog and advances its base past the consumer's position.
        for _ in range(loader._delta_cap + 8):
            loader._log_delta("add", None)
        assert loader._delta_base > stale_seq
        delta = loader.buffer_delta(epoch, stale_seq)
        assert delta["resync"] is True
        assert [m.sample_id for m in delta["buffer"]] == [
            m.sample_id for m in loader.summary_buffer()
        ]

    def test_since_seq_predating_base_resyncs(self, filesystem, small_catalog):
        """A restored consumer whose ``since_seq`` predates the log base (the
        capped-delta-log case after an epoch bump) resyncs cleanly."""
        loader = SourceLoader(small_catalog.sources()[0], filesystem, buffer_size=8)
        loader.on_start()
        loader.buffer_delta(0, 0)
        ids = [m.sample_id for m in loader.summary_buffer()[:1]]
        loader.prepare(ids)
        current = loader.buffer_delta(loader._delta_epoch, loader._delta_seq - 1)
        # since_seq below the served base → snapshot, not a partial splice.
        old = loader.buffer_delta(loader._delta_epoch, 0)
        assert current["resync"] or old["resync"]
        assert old["resync"] is True


# -- whole-run checkpoints land in the run namespace --------------------------------


def test_save_checkpoint_writes_run_namespace():
    system = MegaScaleData.deploy(make_job())
    try:
        for _ in range(3):
            system.run_step()
        saved_at = system.save_checkpoint()
        found = system.checkpoint_store.load_latest(RUN_NAMESPACE)
        assert found is not None
        step, payload = found
        assert step == saved_at == 3
        assert set(payload["loaders"]) == {h.name for h in system.loader_handles}
        assert payload["planner"]["step"] >= 2
        assert {entry["source"] for entry in payload["topology"]} == {
            h.instance().source.name for h in system.loader_handles
        }
    finally:
        system.shutdown()


def test_fault_manager_mirrors_loader_checkpoints_to_store(
    filesystem, small_catalog
):
    from repro.actors.runtime import ActorSystem, ClusterSpec

    store = InMemoryCheckpointStore()
    system = ActorSystem(ClusterSpec(accelerator_nodes=1, cpu_pods=1))
    manager = FaultToleranceManager(
        system,
        FaultToleranceConfig(loader_checkpoint_interval=5),
        checkpoint_store=store,
    )
    handle = system.create_actor(
        lambda: SourceLoader(small_catalog.sources()[0], filesystem, buffer_size=8),
        name="durable-loader",
        memory_bytes=GIB,
    )
    assert manager.checkpoint_loader(handle, step=0, consistent=True)
    assert manager.checkpoint_loader(handle, step=5, consistent=True)
    assert store.steps("loader/durable-loader") == [0, 5]
    manager.discard_checkpoints_after(0)
    assert store.steps("loader/durable-loader") == [0]
    entry = store.load("loader/durable-loader", 0)
    assert entry["consistent"] and "replay" in entry
