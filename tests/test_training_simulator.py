"""Unit tests for the training iteration simulator."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.parallelism.mesh import DeviceMesh
from repro.training.models import VLMConfig, llama_12b, vit_1b
from repro.training.simulator import GpuSpec, InterconnectSpec, TrainingSimulator


def assignments_for(sample_factory, dp, microbatches, tokens_per_sample, samples_per_mb=2, image_tokens=0):
    counter = [0]

    def next_sample(tokens):
        counter[0] += 1
        return sample_factory(counter[0], text_tokens=tokens, image_tokens=image_tokens)

    return [
        [[next_sample(tokens_per_sample) for _ in range(samples_per_mb)] for _ in range(microbatches)]
        for _ in range(dp)
    ]


@pytest.fixture()
def text_simulator():
    return TrainingSimulator(llama_12b(), DeviceMesh(pp=1, dp=2, cp=1, tp=1))


@pytest.fixture()
def vlm_simulator():
    model = VLMConfig(encoder=vit_1b(), backbone=llama_12b())
    return TrainingSimulator(model, DeviceMesh(pp=1, dp=2, cp=1, tp=2))


class TestBasics:
    def test_gpu_seconds_for(self):
        gpu = GpuSpec()
        assert gpu.seconds_for(0) == 0.0
        assert gpu.seconds_for(gpu.peak_flops * gpu.mfu) == pytest.approx(1.0)

    def test_wrong_dp_count_rejected(self, text_simulator, sample_factory):
        with pytest.raises(ConfigurationError):
            text_simulator.simulate_iteration(assignments_for(sample_factory, dp=3, microbatches=1, tokens_per_sample=10))

    def test_iteration_result_fields(self, text_simulator, sample_factory):
        result = text_simulator.simulate_iteration(
            assignments_for(sample_factory, dp=2, microbatches=2, tokens_per_sample=512)
        )
        assert result.iteration_time_s > 0
        assert result.total_tokens == 2 * 2 * 2 * 512
        assert result.throughput_tokens_per_s > 0
        assert len(result.per_dp_time_s) == 2

    def test_encoder_disabled_for_text_models(self, text_simulator, sample_factory):
        result = text_simulator.simulate_iteration(
            assignments_for(sample_factory, dp=2, microbatches=1, tokens_per_sample=128)
        )
        assert result.encoder_time_s == 0.0
        assert result.alltoall_time_s == 0.0

    def test_vlm_has_encoder_and_alltoall(self, vlm_simulator, sample_factory):
        result = vlm_simulator.simulate_iteration(
            assignments_for(sample_factory, dp=2, microbatches=1, tokens_per_sample=64, image_tokens=512)
        )
        assert result.encoder_time_s > 0
        assert result.alltoall_time_s > 0


class TestScalingBehaviour:
    def test_longer_sequences_take_longer(self, text_simulator, sample_factory):
        short = text_simulator.simulate_iteration(
            assignments_for(sample_factory, dp=2, microbatches=2, tokens_per_sample=256)
        )
        long = text_simulator.simulate_iteration(
            assignments_for(sample_factory, dp=2, microbatches=2, tokens_per_sample=2048)
        )
        assert long.iteration_time_s > short.iteration_time_s

    def test_imbalanced_assignment_slower_than_balanced(self, text_simulator, sample_factory):
        balanced = [
            [[sample_factory(1, text_tokens=1000), sample_factory(2, text_tokens=1000)]],
            [[sample_factory(3, text_tokens=1000), sample_factory(4, text_tokens=1000)]],
        ]
        imbalanced = [
            [[sample_factory(5, text_tokens=1900), sample_factory(6, text_tokens=1900)]],
            [[sample_factory(7, text_tokens=100), sample_factory(8, text_tokens=100)]],
        ]
        fast = text_simulator.simulate_iteration(balanced)
        slow = text_simulator.simulate_iteration(imbalanced)
        assert slow.iteration_time_s > fast.iteration_time_s
        assert slow.bubble_time_s > fast.bubble_time_s

    def test_model_parallel_sharding_reduces_per_rank_time(self, sample_factory):
        mesh_small = DeviceMesh(pp=1, dp=2, cp=1, tp=1)
        mesh_big = DeviceMesh(pp=2, dp=2, cp=1, tp=2)
        assignments = assignments_for(sample_factory, dp=2, microbatches=2, tokens_per_sample=1024)
        t_small = TrainingSimulator(llama_12b(), mesh_small).simulate_iteration(assignments)
        t_big = TrainingSimulator(llama_12b(), mesh_big).simulate_iteration(assignments)
        assert t_big.backbone_time_s < t_small.backbone_time_s

    def test_fetch_latency_exposed_only_when_longer_than_compute(
        self, text_simulator, sample_factory
    ):
        assignments = assignments_for(sample_factory, dp=2, microbatches=2, tokens_per_sample=1024)
        hidden = text_simulator.simulate_iteration(assignments, data_fetch_latency_s=0.001)
        exposed = text_simulator.simulate_iteration(assignments, data_fetch_latency_s=1e4)
        assert hidden.exposed_fetch_time_s == 0.0
        assert exposed.exposed_fetch_time_s > 0.0
        assert exposed.iteration_time_s > hidden.iteration_time_s

    def test_peak_activation_tracks_largest_microbatch(self, text_simulator, sample_factory):
        assignments = [
            [[sample_factory(1, text_tokens=100)], [sample_factory(2, text_tokens=900)]],
            [[sample_factory(3, text_tokens=500)], [sample_factory(4, text_tokens=500)]],
        ]
        result = text_simulator.simulate_iteration(assignments)
        assert result.peak_activation_tokens == 900

    def test_custom_interconnect_slows_alltoall(self, sample_factory):
        model = VLMConfig(encoder=vit_1b(), backbone=llama_12b())
        mesh = DeviceMesh(pp=1, dp=2, cp=1, tp=1)
        fast = TrainingSimulator(model, mesh)
        slow = TrainingSimulator(
            model, mesh, interconnect=InterconnectSpec(alltoall_bandwidth_bps=1.0e8)
        )
        assignments = assignments_for(
            sample_factory, dp=2, microbatches=1, tokens_per_sample=64, image_tokens=2048
        )
        assert (
            slow.simulate_iteration(assignments).alltoall_time_s
            > fast.simulate_iteration(assignments).alltoall_time_s
        )

    def test_timeline_recorded_per_dp_and_microbatch(self, text_simulator, sample_factory):
        result = text_simulator.simulate_iteration(
            assignments_for(sample_factory, dp=2, microbatches=3, tokens_per_sample=128)
        )
        assert len(result.timeline.events(component="dp0")) == 3
        assert len(result.timeline.events(component="dp1")) == 3
