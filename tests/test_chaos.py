"""Unit tests for the chaos subsystem: plans, the engine, retry policies,
failure domains and the degraded-mode plumbing they drive."""

from __future__ import annotations

import pytest

from repro.actors.actor import ActorState
from repro.actors.node import NodeKind
from repro.actors.runtime import ActorSystem, ClusterSpec
from repro.actors.scheduler import PlacementRequest, PlacementScheduler
from repro.chaos import ChaosEngine, FaultEvent, FaultPlan
from repro.core.checkpoint import InMemoryCheckpointStore
from repro.core.dgraph import expected_quotas
from repro.core.fault_tolerance import (
    FaultToleranceConfig,
    FaultToleranceManager,
    RecoveryEvent,
    RetryPolicy,
)
from repro.core.framework import MegaScaleData, TrainingJobSpec
from repro.core.source_loader import SourceLoader
from repro.errors import (
    ActorDead,
    ActorTimeout,
    ConfigurationError,
    StorageError,
)
from repro.utils.units import GIB


# -- fault plans -------------------------------------------------------------------------


class TestFaultPlan:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultEvent("meteor_strike", 1.0)

    def test_windowed_kinds_need_duration(self):
        with pytest.raises(ConfigurationError):
            FaultEvent("gcs_blip", 1.0, target="planner")

    def test_straggler_needs_slowdown(self):
        with pytest.raises(ConfigurationError):
            FaultEvent("straggler", 1.0, target="loader", duration_s=5.0, factor=1.0)

    def test_crashes_need_targets(self):
        with pytest.raises(ConfigurationError):
            FaultEvent("node_crash", 1.0)

    def test_events_sorted_and_horizon(self):
        plan = FaultPlan([
            FaultEvent("store_outage", 50.0, duration_s=30.0),
            FaultEvent("actor_crash", 10.0, target="a"),
        ])
        assert [e.kind for e in plan.events] == ["actor_crash", "store_outage"]
        assert plan.horizon_s() == 80.0
        assert plan.describe()["counts"] == {"actor_crash": 1, "store_outage": 1}

    def test_random_storm_deterministic(self):
        kwargs = dict(
            horizon_s=1000.0,
            actors=["planner", "loader-0"],
            nodes=["cpu-pod-0"],
            sources=["src-a"],
            roles=["source_loader"],
            num_events=8,
        )
        assert FaultPlan.random_storm(3, **kwargs).events == FaultPlan.random_storm(
            3, **kwargs
        ).events
        assert FaultPlan.random_storm(3, **kwargs).events != FaultPlan.random_storm(
            4, **kwargs
        ).events

    def test_random_storm_stays_inside_horizon(self):
        for seed in range(8):
            storm = FaultPlan.random_storm(
                seed, horizon_s=100.0, actors=["a"], sources=["s"], num_events=6
            )
            assert len(storm.events) == 6
            for event in storm.events:
                assert 10.0 <= event.at_s <= 85.0
                assert event.end_s <= 100.0


# -- chaos engine ------------------------------------------------------------------------


def _loader_system(catalog, filesystem):
    system = ActorSystem(ClusterSpec(accelerator_nodes=1, cpu_pods=1))
    source = catalog.sources()[0]
    handle = system.create_actor(
        lambda: SourceLoader(source, filesystem, buffer_size=8),
        name="chaos-loader",
        memory_bytes=GIB,
    )
    return system, handle, source


class TestChaosEngine:
    def test_one_shot_crash_fires_once(self, small_catalog, filesystem):
        system, handle, _ = _loader_system(small_catalog, filesystem)
        engine = ChaosEngine(
            FaultPlan([FaultEvent("actor_crash", 5.0, target="chaos-loader")])
        ).attach(system)
        system.clock.advance(10.0)
        with pytest.raises(ActorDead):
            handle.call("buffer_depth")
        assert engine.summary()["counts"] == {"actor_crash": 1}
        # The one-shot does not re-fire on later invocations.
        system.restart_actor("chaos-loader")
        handle.call("buffer_depth")
        assert engine.summary()["counts"] == {"actor_crash": 1}

    def test_windowed_blackout_is_lazy(self, small_catalog, filesystem):
        system, handle, source = _loader_system(small_catalog, filesystem)
        engine = ChaosEngine(
            FaultPlan([
                FaultEvent(
                    "source_blackout", 10.0, target=source.name, duration_s=5.0
                )
            ])
        ).attach(system)
        # Before the window: calls pass and the fault has not "fired".
        handle.call("buffer_depth")
        assert engine.summary()["counts"] == {}
        # Inside the window: calls to the source's loader are vetoed, and
        # only now does the fault count as fired.
        system.clock.advance(12.0)
        with pytest.raises(ActorTimeout):
            handle.call("buffer_depth")
        assert engine.summary()["counts"] == {"source_blackout": 1}
        assert engine.blackout_active(source.name)
        # Past the window: the loader answers again (it was alive all along).
        system.clock.advance(10.0)
        handle.call("buffer_depth")
        assert not engine.blackout_active(source.name)

    def test_store_outage_wraps_checkpoint_store(self, small_catalog, filesystem):
        system, _, _ = _loader_system(small_catalog, filesystem)
        engine = ChaosEngine(
            FaultPlan([FaultEvent("store_outage", 10.0, duration_s=5.0)])
        ).attach(system)
        store = engine.wrap_store(InMemoryCheckpointStore())
        store.save("ns", 1, {"x": 1})
        system.clock.advance(12.0)
        with pytest.raises(StorageError):
            store.save("ns", 2, {"x": 2})
        with pytest.raises(StorageError):
            store.load("ns", 1)
        # Read-only metadata keeps working so recovery bookkeeping survives.
        assert store.steps("ns") == [1]
        system.clock.advance(10.0)
        assert store.load("ns", 1) == {"x": 1}


# -- injected failure between submission and execution -----------------------------------


class TestFailAfterSubmission:
    def test_virtual_backend(self, small_catalog, filesystem):
        system, handle, _ = _loader_system(small_catalog, filesystem)
        future = handle.submit("buffer_depth")
        system.failures.fail(handle.name)
        while not future.done():
            if system.tick() == 0:
                break
        assert isinstance(future.exception(), ActorDead)

    def test_wallclock_backend(self, small_catalog, filesystem):
        system = ActorSystem(
            ClusterSpec(accelerator_nodes=1, cpu_pods=1), backend="wallclock"
        )
        source = small_catalog.sources()[0]
        handle = system.create_actor(
            lambda: SourceLoader(source, filesystem, buffer_size=8),
            name="chaos-loader",
            memory_bytes=GIB,
        )
        try:
            # Occupy the lane with a modelled busy window so the second call
            # is still queued when the failure lands.
            first = handle.submit_timed("buffer_depth", duration_s=0.2)
            second = handle.submit("buffer_depth")
            system.failures.fail(handle.name)
            for future in (first, second):
                while not future.done():
                    if system.tick() == 0:
                        break
            assert isinstance(second.exception(), ActorDead)
        finally:
            system.stop_actor("chaos-loader")


# -- failure domains ---------------------------------------------------------------------


def _request(name: str, **overrides) -> PlacementRequest:
    kwargs = dict(
        actor_name=name, cpu_cores=1.0, memory_bytes=GIB, prefer=NodeKind.CPU
    )
    kwargs.update(overrides)
    return PlacementRequest(**kwargs)


class TestFailureDomains:
    def test_anti_affinity_separates(self):
        nodes = ClusterSpec(accelerator_nodes=0, cpu_pods=2).build_nodes()
        scheduler = PlacementScheduler(nodes)
        primary = scheduler.place(_request("primary"))
        shadow = scheduler.place(
            _request("shadow", anti_affinity=primary.node_name)
        )
        assert shadow.node_name != primary.node_name
        assert not shadow.colocated

    def test_anti_affinity_colocates_on_single_node(self):
        nodes = ClusterSpec(accelerator_nodes=0, cpu_pods=1).build_nodes()
        scheduler = PlacementScheduler(nodes)
        primary = scheduler.place(_request("primary"))
        shadow = scheduler.place(
            _request("shadow", anti_affinity=primary.node_name)
        )
        assert shadow.node_name == primary.node_name
        assert shadow.colocated

    def test_crash_node_releases_reservations(self, small_catalog, filesystem):
        system, handle, _ = _loader_system(small_catalog, filesystem)
        node = system.scheduler.node(system.actor_node(handle.name))
        reserved = node.reserved_cpu
        assert reserved > 0
        victims = system.crash_node(node.name)
        assert handle.name in victims
        assert system.actor_state(handle.name) is ActorState.FAILED
        assert node.reserved_cpu < reserved
        # Restarting in place re-books the released reservation.
        system.restart_actor(handle.name)
        assert node.reserved_cpu == reserved

    def test_deployed_shadows_live_on_other_nodes(self, tmp_path):
        job = TrainingJobSpec(
            pp=1, dp=2, cp=1, tp=1, encoder=None, strategy="backbone_balance",
            samples_per_dp_step=8, num_microbatches=2, num_sources=2,
            samples_per_source=64, seed=5, cpu_pods=2,
            enable_shadow_loaders=True,
        )
        fw = MegaScaleData.deploy(job)
        try:
            pairs = 0
            for handle in fw.loader_handles:
                shadow = fw.fault_manager.shadow_for(handle.name)
                if shadow is None:
                    continue
                pairs += 1
                assert fw.system.actor_node(shadow.name) != fw.system.actor_node(
                    handle.name
                )
            assert pairs > 0
        finally:
            fw.shutdown()


# -- retry policies and the recovery log -------------------------------------------------


class TestRetryPolicies:
    def test_delays_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay_s=0.1, max_delay_s=1.0, jitter=0.25)
        delays = [policy.delay_s(attempt, key="probe") for attempt in range(1, 8)]
        assert delays == [policy.delay_s(a, key="probe") for a in range(1, 8)]
        assert all(d <= 1.0 * 1.25 for d in delays)
        # Different jitter keys decorrelate retry timelines.
        assert delays != [policy.delay_s(a, key="other") for a in range(1, 8)]

    def test_invalid_policies_rejected(self):
        from repro.core.fault_tolerance import FaultToleranceError

        with pytest.raises(FaultToleranceError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(FaultToleranceError):
            RetryPolicy(base_delay_s=2.0, max_delay_s=1.0)

    def test_call_with_retry_waits_out_transient(self, small_catalog, filesystem):
        system, _, _ = _loader_system(small_catalog, filesystem)
        manager = FaultToleranceManager(system, FaultToleranceConfig())
        attempts = []

        def flaky():
            attempts.append(system.clock.now_s)
            if len(attempts) < 3:
                raise ActorTimeout("transient")
            return "ok"

        assert manager.call_with_retry("planner", "gather", flaky) == "ok"
        assert len(attempts) == 3
        # Backoff sleeps advanced the shared clock between attempts.
        assert attempts == sorted(attempts) and attempts[0] < attempts[-1]

    def test_open_breaker_short_circuits(self, small_catalog, filesystem):
        system, _, _ = _loader_system(small_catalog, filesystem)
        manager = FaultToleranceManager(
            system, FaultToleranceConfig(breaker_threshold=2)
        )

        def always_dark():
            raise ActorTimeout("dark")

        with pytest.raises(ActorTimeout):
            manager.call_with_retry("loader", "poll", always_dark, actor="victim")
        assert manager.breaker.is_open("victim")
        calls = []

        def counted():
            calls.append(1)
            raise ActorTimeout("dark")

        # The open breaker re-raises on the first failure instead of
        # burning the whole backoff budget.
        with pytest.raises(ActorTimeout):
            manager.call_with_retry("loader", "poll", counted, actor="victim")
        assert len(calls) == 1

    def test_recovery_log_ring_buffer(self, small_catalog, filesystem):
        system, _, _ = _loader_system(small_catalog, filesystem)
        manager = FaultToleranceManager(
            system, FaultToleranceConfig(events_limit=4)
        )
        for step in range(10):
            manager._append_event(
                RecoveryEvent(
                    step=step, component="loader", kind="restart",
                    recovery_latency_s=1.0,
                )
            )
        assert len(manager.events()) == 4
        assert [event.step for event in manager.events()] == [6, 7, 8, 9]
        summary = manager.recovery_summary()
        # Aggregates stay exact past ring eviction.
        assert summary["total_events"] == 10
        assert summary["retained_events"] == 4
        assert summary["by_kind"]["restart"]["count"] == 10
        assert summary["total_latency_s"] == pytest.approx(10.0)


# -- degraded-mode arithmetic ------------------------------------------------------------


class TestQuotaArithmetic:
    def test_expected_quotas_sum_to_target(self):
        weights = {"a": 0.4, "b": 0.35, "c": 0.25}
        quotas = expected_quotas(weights, 16)
        assert sum(quotas.values()) == 16
        assert quotas == expected_quotas(weights, 16)

    def test_expected_quotas_drop_nonpositive(self):
        quotas = expected_quotas({"a": 0.5, "b": 0.5, "dark": 0.0}, 10)
        assert quotas["dark"] == 0
        assert sum(quotas.values()) == 10


# -- job knobs ---------------------------------------------------------------------------


class TestJobKnobs:
    def test_wallclock_tick_timeout_validated(self):
        with pytest.raises(ConfigurationError):
            TrainingJobSpec(
                pp=1, dp=1, cp=1, tp=1, encoder=None,
                samples_per_dp_step=4, num_microbatches=1,
                wallclock_tick_timeout_s=0.0,
            )

    def test_degraded_mode_validated(self):
        with pytest.raises(ConfigurationError):
            TrainingJobSpec(
                pp=1, dp=1, cp=1, tp=1, encoder=None,
                samples_per_dp_step=4, num_microbatches=1,
                degraded_mode="shrug",
            )
