"""Unit tests for the wallclock execution backend (real actor lanes).

The wallclock engine must serve the exact ActorSystem API the virtual engine
does — submit/tick/drain/cancel/retire — from *real* thread completions while
preserving the semantics drivers rely on: per-actor FIFO body order, blocking
ticks, bounded waits that raise instead of hanging, and explicit quiescence.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.actors.actor import Actor, ActorFuture
from repro.actors.runtime import ActorSystem, ClusterSpec
from repro.actors.wallclock import WallClock
from repro.core.cost_model import (
    CalibratedLatencyProvider,
    LatencyRecorder,
    reconcile_timing,
)
from repro.errors import ActorError


#: Compress modelled seconds aggressively so the suite stays fast.
FAST = 0.01


class Recorder(Actor):
    """Appends (method, arg) markers; used to observe body execution order."""

    role = "recorder"

    def __init__(self) -> None:
        super().__init__()
        self.log: list[int] = []
        self.lock = threading.Lock()
        self.concurrent_bodies = 0
        self.max_concurrent_bodies = 0

    def mark(self, value: int) -> int:
        with self.lock:
            self.concurrent_bodies += 1
            self.max_concurrent_bodies = max(
                self.max_concurrent_bodies, self.concurrent_bodies
            )
        time.sleep(0.002)  # widen the race window for the turnstile check
        with self.lock:
            self.log.append(value)
            self.concurrent_bodies -= 1
        return value


class Sleeper(Actor):
    role = "sleeper"

    def nap(self, real_seconds: float) -> float:
        time.sleep(real_seconds)
        return real_seconds


def make_system(**kwargs) -> ActorSystem:
    kwargs.setdefault("backend", "wallclock")
    return ActorSystem(ClusterSpec(accelerator_nodes=1, cpu_pods=1), **kwargs)


class TestWallClock:
    def test_reports_virtual_units(self):
        clock = WallClock(time_scale=0.5)
        before = clock.now_s
        time.sleep(0.05)
        elapsed = clock.now_s - before
        # 0.05 real seconds at 0.5 real-per-virtual = 0.1 virtual seconds.
        assert elapsed >= 0.09

    def test_advance_is_noop(self):
        clock = WallClock()
        clock.advance(100.0)
        clock.advance_to(1e6)
        assert clock.now_s < 10.0

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ActorError):
            WallClock(time_scale=0.0)


class TestSubmitAndTick:
    def test_bodies_run_fifo_and_serialized(self):
        system = make_system(time_scale=FAST)
        handle = system.create_actor(Recorder, name="r", concurrency=4)
        futures = [handle.submit("mark", i) for i in range(16)]
        system.drain()
        recorder = handle.instance()
        assert recorder.log == list(range(16))
        assert recorder.max_concurrent_bodies == 1  # turnstile held
        assert [f.result() for f in futures] == list(range(16))

    def test_tick_blocks_for_real_completion(self):
        system = make_system(time_scale=FAST)
        handle = system.create_actor(Sleeper, name="s")
        future = handle.submit("nap", 0.05)
        # The virtual-engine driver loop must terminate on real completions.
        while not future.done():
            if system.tick() == 0:
                break
        assert future.result() == 0.05

    def test_tick_returns_zero_when_idle(self):
        system = make_system(time_scale=FAST)
        system.create_actor(Recorder, name="r")
        assert system.tick() == 0

    def test_modelled_durations_overlap_across_lanes(self):
        # Two lanes, two calls of 20 modelled seconds each: the bodies are
        # instant, the modelled latency sleeps concurrently — wall time must
        # be well under the 40-second serial sum (scaled).
        system = make_system(time_scale=FAST)
        handle = system.create_actor(Recorder, name="r", concurrency=2)
        t0 = time.monotonic()
        futures = [handle.submit_timed("mark", i, duration_s=20.0) for i in range(2)]
        system.drain()
        elapsed_real = time.monotonic() - t0
        assert all(f.done() for f in futures)
        assert elapsed_real < 2 * 20.0 * FAST * 0.9
        # Completion instants are published in virtual units, like virtual.
        for future in futures:
            assert future.available_at_s >= 20.0

    def test_single_lane_serializes_durations(self):
        system = make_system(time_scale=FAST)
        handle = system.create_actor(Recorder, name="r", concurrency=1)
        t0 = time.monotonic()
        for i in range(2):
            handle.submit_timed("mark", i, duration_s=20.0)
        system.drain()
        assert time.monotonic() - t0 >= 2 * 20.0 * FAST * 0.8

    def test_earliest_start_is_honoured(self):
        system = make_system(time_scale=FAST)
        handle = system.create_actor(Recorder, name="r")
        future = handle.submit_timed("mark", 1, earliest_start_s=30.0)
        system.drain()
        assert future.result() == 1
        assert future.available_at_s >= 30.0


class TestTimeoutParity:
    def test_result_timeout_raises_wallclock(self):
        system = make_system(time_scale=1.0)
        handle = system.create_actor(Sleeper, name="s")
        future = handle.submit("nap", 0.3)
        with pytest.raises(TimeoutError):
            future.result(timeout=0.05)
        system.drain()
        assert future.result() == 0.3

    def test_result_timeout_drives_virtual_engine(self):
        system = ActorSystem(ClusterSpec(accelerator_nodes=1, cpu_pods=1))
        handle = system.create_actor(Recorder, name="r")
        future = handle.submit_timed("mark", 7, duration_s=5.0)
        # No explicit tick: result(timeout=) drives the engine to completion.
        assert future.result(timeout=100.0) == 7

    def test_detached_future_timeout(self):
        future = ActorFuture("ghost", "noop")
        with pytest.raises(TimeoutError):
            future.result(timeout=0.02)

    def test_drain_deadline_raises_wallclock(self):
        system = make_system(time_scale=FAST)
        handle = system.create_actor(Sleeper, name="s")
        handle.submit("nap", 0.2)
        with pytest.raises(TimeoutError):
            # 1 virtual second = 10ms real; the nap takes 200ms real.
            system.drain(deadline_s=1.0)
        system.drain()

    def test_drain_deadline_raises_virtual(self):
        system = ActorSystem(ClusterSpec(accelerator_nodes=1, cpu_pods=1))
        handle = system.create_actor(Recorder, name="r")
        # Serialized 100s events: the virtual clock passes the 150s deadline
        # while calls are still pending, so the drain must raise.
        for _ in range(4):
            handle.submit_timed("mark", 0, duration_s=100.0)
        with pytest.raises(TimeoutError):
            system.drain(deadline_s=150.0)

    def test_drain_deadline_passes_when_work_fits(self):
        system = ActorSystem(ClusterSpec(accelerator_nodes=1, cpu_pods=1))
        handle = system.create_actor(Recorder, name="r")
        handle.submit_timed("mark", 0, duration_s=10.0)
        assert system.drain(deadline_s=1000.0) == 1


class TestRetireAndCancel:
    def test_retire_drain_under_load(self):
        system = make_system(time_scale=FAST)
        handle = system.create_actor(Recorder, name="r")
        futures = [handle.submit_timed("mark", i, duration_s=5.0) for i in range(4)]
        assert system.retire_actor("r", mode="drain") is False
        system.drain()
        assert [f.result() for f in futures] == [0, 1, 2, 3]
        assert "r" not in system.list_actor_names()

    def test_retire_drain_idle_is_immediate(self):
        system = make_system(time_scale=FAST)
        system.create_actor(Recorder, name="r")
        assert system.retire_actor("r", mode="drain") is True
        assert "r" not in system.list_actor_names()

    def test_retire_handoff_moves_queue(self):
        system = make_system(time_scale=FAST)
        source = system.create_actor(Recorder, name="a")
        successor = system.create_actor(Recorder, name="b")
        futures = [source.submit_timed("mark", i, duration_s=5.0) for i in range(6)]
        assert system.retire_actor("a", mode="handoff", successor="b") is True
        system.drain()
        for future in futures:
            assert future.done()
            assert future.exception() is None
        # Every queued (unstarted) call ran on the successor; at most the one
        # call already claimed by the retiree's lane finished there.
        assert len(successor.instance().log) >= 5
        assert "a" not in system.list_actor_names()

    def test_cancel_pending_under_contention(self):
        system = make_system(time_scale=FAST)
        handle = system.create_actor(Sleeper, name="s", concurrency=2)
        futures = [handle.submit("nap", 0.05) for _ in range(10)]
        time.sleep(0.01)  # let a couple of calls get claimed by lanes
        system.cancel_pending("s")
        # Contract: nothing pending afterwards and nothing mid-execution.
        assert system.pending_count("s") == 0
        states = {"done": 0, "cancelled": 0}
        for future in futures:
            assert future.done()
            states["cancelled" if future.cancelled() else "done"] += 1
        assert states["cancelled"] >= 1
        # The actor still serves new work after the purge.
        follow_up = handle.submit("nap", 0.0)
        system.drain()
        assert follow_up.result() == 0.0

    def test_quiesce_waits_for_inflight(self):
        system = make_system(time_scale=FAST)
        handle = system.create_actor(Sleeper, name="s")
        handle.submit("nap", 0.05)
        system.quiesce(["s"])
        assert system.pending_count("s") == 0

    def test_quiesce_is_noop_on_virtual(self):
        system = ActorSystem(ClusterSpec(accelerator_nodes=1, cpu_pods=1))
        handle = system.create_actor(Recorder, name="r")
        handle.submit("mark", 1)
        system.quiesce()  # must not hang or execute anything
        assert system.pending_count("r") == 1

    def test_stop_actor_fails_queued_calls(self):
        system = make_system(time_scale=FAST)
        handle = system.create_actor(Sleeper, name="s")
        first = handle.submit("nap", 0.05)
        queued = [handle.submit("nap", 0.0) for _ in range(3)]
        time.sleep(0.01)  # let the first call get claimed
        system.stop_actor("s")
        for future in queued:
            assert future.done()
        # The claimed call was mid-body at stop time; it finishes normally
        # on its lane (executed events are never revoked).
        assert first.result(timeout=60.0) == 0.05

    def test_resize_lanes_widens_overlap(self):
        system = make_system(time_scale=FAST)
        handle = system.create_actor(Recorder, name="r", concurrency=1)
        system.resize_actor_pool("r", concurrency=3)
        t0 = time.monotonic()
        for i in range(3):
            handle.submit_timed("mark", i, duration_s=20.0)
        system.drain()
        assert time.monotonic() - t0 < 3 * 20.0 * FAST * 0.8


class TestDirectCalls:
    def test_direct_call_serializes_with_submissions(self):
        system = make_system(time_scale=FAST)
        handle = system.create_actor(Recorder, name="r")
        for i in range(4):
            handle.submit("mark", i)
        assert handle.call("mark", 99) == 99
        system.drain()
        log = handle.instance().log
        assert sorted(log) == [0, 1, 2, 3, 99]
        assert handle.instance().max_concurrent_bodies == 1


class TestCalibration:
    def test_recorder_aggregates_samples(self):
        recorder = LatencyRecorder()
        recorder.record("loader", "prepare", 0.5)
        recorder.record("loader", "prepare", 1.5)
        recorder.record("planner", "plan", 0.25)
        summary = recorder.summary()
        assert summary["loader.prepare"]["count"] == 2
        assert summary["loader.prepare"]["mean_s"] == pytest.approx(1.0)
        assert summary["planner.plan"]["total_s"] == pytest.approx(0.25)

    def test_calibrated_provider_replays_fifo_then_mean(self):
        recorder = LatencyRecorder()

        class Stub(Actor):
            role = "loader"

        for duration in (0.5, 1.5):
            recorder.record("loader", "prepare", duration)
        provider = recorder.to_provider()
        assert isinstance(provider, CalibratedLatencyProvider)
        assert provider.wants_lane_context is False
        stub = Stub()
        assert provider.call_duration_s(stub, "prepare", None) == pytest.approx(0.5)
        assert provider.call_duration_s(stub, "prepare", None) == pytest.approx(1.5)
        # Replay exhausted: fall back to the measured mean.
        assert provider.call_duration_s(stub, "prepare", None) == pytest.approx(1.0)
        # Unmeasured methods cost nothing rather than guessing.
        assert provider.call_duration_s(stub, "unseen", None) == 0.0

    def test_wallclock_engine_records_calibration(self):
        system = make_system(time_scale=FAST)
        handle = system.create_actor(Recorder, name="r")
        handle.submit_timed("mark", 1, duration_s=10.0)
        system.drain()
        summary = system.engine.calibration.summary()
        assert summary["recorder.mark"]["count"] == 1
        assert summary["recorder.mark"]["mean_s"] >= 10.0

    def test_reconcile_timing_report(self):
        measured = {"data_stall_time_s": 1.0, "hidden_data_time_s": 4.0}
        simulated = {"data_stall_time_s": 1.1, "hidden_data_time_s": 8.0}
        report = reconcile_timing(
            measured, simulated,
            metrics=("data_stall_time_s", "hidden_data_time_s"),
            tolerance=0.25,
        )
        assert report["metrics"]["data_stall_time_s"]["reconciled"] is True
        assert report["metrics"]["hidden_data_time_s"]["reconciled"] is False
        assert report["within_tolerance"] is False

    def test_reconcile_timing_absolute_floor(self):
        # Sub-millisecond disagreements never fail the gate, whatever the
        # relative error says.
        report = reconcile_timing(
            {"data_stall_time_s": 0.0},
            {"data_stall_time_s": 5e-4},
            metrics=("data_stall_time_s",),
        )
        assert report["within_tolerance"] is True
