"""Unit tests for the balancing strategies."""

from __future__ import annotations

import pytest

from repro.core.balancing import (
    WeightedItem,
    available_strategies,
    balance_items,
    get_strategy,
    greedy_binpack,
    hierarchical_balance,
    imbalance_statistics,
    interleaved_balance,
    karmarkar_karp,
    register_strategy,
)
from repro.errors import OrchestrationError


def items_from(costs):
    return [WeightedItem(key=i, cost=float(c)) for i, c in enumerate(costs)]


class TestGreedy:
    def test_perfect_split_when_possible(self):
        result = greedy_binpack(items_from([4, 4, 4, 4]), 2)
        assert result.bin_costs == [8.0, 8.0]
        assert result.imbalance_ratio == pytest.approx(1.0)

    def test_all_items_assigned_exactly_once(self):
        items = items_from(range(1, 20))
        result = greedy_binpack(items, 4)
        keys = sorted(key for bin_keys in result.keys_per_bin() for key in bin_keys)
        assert keys == list(range(19))

    def test_beats_naive_split_on_skewed_costs(self):
        costs = [100, 1, 1, 1, 1, 1, 1, 95]
        naive_max = sum(costs[:4])  # arrival-order split
        result = greedy_binpack(items_from(costs), 2)
        assert result.max_cost < naive_max

    def test_invalid_bin_count(self):
        with pytest.raises(OrchestrationError):
            greedy_binpack(items_from([1]), 0)

    def test_empty_items(self):
        result = greedy_binpack([], 3)
        assert result.bin_costs == [0.0, 0.0, 0.0]
        assert result.imbalance_ratio == 1.0


class TestKarmarkarKarp:
    def test_two_way_partition_quality(self):
        costs = [8, 7, 6, 5, 4]
        result = karmarkar_karp(items_from(costs), 2)
        assert result.max_cost - result.min_cost <= 2

    def test_all_items_preserved(self):
        items = items_from([3, 1, 4, 1, 5, 9, 2, 6])
        result = karmarkar_karp(items, 3)
        assert sorted(k for b in result.keys_per_bin() for k in b) == list(range(8))
        assert sum(result.bin_costs) == pytest.approx(sum(i.cost for i in items))

    def test_not_worse_than_greedy_on_skewed_input(self):
        costs = [2**k for k in range(12)]
        kk = karmarkar_karp(items_from(costs), 3)
        greedy = greedy_binpack(items_from(costs), 3)
        assert kk.max_cost <= greedy.max_cost * 1.05

    def test_empty(self):
        assert karmarkar_karp([], 2).bin_costs == [0.0, 0.0]

    def test_invalid_bins(self):
        with pytest.raises(OrchestrationError):
            karmarkar_karp(items_from([1]), 0)


class TestInterleave:
    def test_zigzag_order(self):
        result = interleaved_balance(items_from([8, 7, 6, 5, 4, 3, 2, 1]), 4)
        # descending deal: bins get (8,1),(7,2),(6,3),(5,4)
        assert sorted(result.bin_costs) == [9.0, 9.0, 9.0, 9.0]

    def test_single_bin(self):
        result = interleaved_balance(items_from([1, 2, 3]), 1)
        assert result.bin_costs == [6.0]


class TestRegistry:
    def test_builtins_available(self):
        assert {"greedy", "karmarkar-karp", "interleave"} <= set(available_strategies())

    def test_dispatch(self):
        result = balance_items(items_from([1, 2, 3, 4]), 2, method="karmarkar-karp")
        assert sum(result.bin_costs) == 10.0

    def test_unknown_strategy(self):
        with pytest.raises(OrchestrationError):
            get_strategy("zigzag-ultra")

    def test_register_custom_strategy(self):
        def first_fit(items, num_bins):
            return greedy_binpack(items, num_bins)

        register_strategy("first_fit_test", first_fit, overwrite=True)
        assert "first_fit_test" in available_strategies()
        result = balance_items(items_from([1, 2]), 2, method="first_fit_test")
        assert sum(result.bin_costs) == 3.0

    def test_register_duplicate_rejected(self):
        with pytest.raises(OrchestrationError):
            register_strategy("greedy", greedy_binpack)


class TestHierarchicalAndStats:
    def test_hierarchical_levels(self):
        results = hierarchical_balance(items_from(range(1, 33)), num_buckets=4, bins_per_bucket=2)
        assert len(results) == 4
        assert all(len(r.bins) == 2 for r in results)
        total = sum(cost for r in results for cost in r.bin_costs)
        assert total == pytest.approx(sum(range(1, 33)))

    def test_imbalance_statistics(self):
        stats = imbalance_statistics([10.0, 20.0, 30.0, 40.0])
        assert stats["max"] == 40.0
        assert stats["ratio"] == pytest.approx(4.0)
        assert stats["cv"] > 0

    def test_imbalance_statistics_empty(self):
        assert imbalance_statistics([])["ratio"] == 1.0

    def test_imbalance_statistics_zero_min(self):
        assert imbalance_statistics([0.0, 5.0])["ratio"] == float("inf")
