"""Property test: the wallclock backend is byte-identical to virtual.

The wallclock engine runs real thread-parallel actor lanes, yet per-actor
bodies execute serialized in submission order and the StepPipeline pumps
steps strictly in order — so for the same job spec and seed, both backends
must deliver the exact same batches, step for step, byte for byte, through
prefetching, mid-run elasticity and loader failure/recovery.  Timing differs
(one is simulated, one measured); data must not.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.framework import MegaScaleData, TrainingJobSpec

#: Real seconds per virtual second: compresses the modelled latencies so the
#: wallclock legs of the matrix stay unit-test fast.
TIME_SCALE = 2e-4


def make_job(prefetch_depth: int, seed: int, **overrides) -> TrainingJobSpec:
    return TrainingJobSpec(
        pp=1, dp=2, cp=1, tp=1, encoder=None, strategy="backbone_balance",
        samples_per_dp_step=4, num_microbatches=2, num_sources=3,
        samples_per_source=96, seed=seed, prefetch_depth=prefetch_depth,
        **overrides,
    )


def delivery_signature(result):
    return {
        rank: [
            (piece.rank, piece.microbatch_index, piece.token_count, piece.payload_bytes)
            for piece in delivery.slices
        ]
        for rank, delivery in sorted(result.deliveries.items())
    }


def run_scenario(job: TrainingJobSpec, steps: int, *, scale_at=None, fail_at=None):
    """Run ``steps`` steps, optionally scaling a source / failing a loader."""
    fw = MegaScaleData.deploy(job)
    signatures = []
    try:
        source = fw.catalog.sources()[0].name
        for step in range(steps):
            if scale_at is not None and step == scale_at:
                fw.scale_source(source, 2)
            if fail_at is not None and step == fail_at:
                fw.system.failures.fail(fw.loader_handles[0].name)
            result = fw.run_step(simulate=True)
            signatures.append((result.step, delivery_signature(result)))
        audit = fw.delivery_audit()
    finally:
        fw.shutdown()
    return signatures, audit


@pytest.mark.parametrize("prefetch_depth", [0, 1, 2])
@pytest.mark.parametrize("seed", [3, 11])
def test_backends_deliver_identical_batches(prefetch_depth, seed):
    job = make_job(prefetch_depth, seed)
    virtual, audit_v = run_scenario(job, steps=6)
    wallclock, audit_w = run_scenario(
        dataclasses.replace(
            job, backend="wallclock", wallclock_time_scale=TIME_SCALE
        ),
        steps=6,
    )
    assert virtual == wallclock
    assert audit_v["exactly_once"] and audit_w["exactly_once"]
    assert audit_v == audit_w


@pytest.mark.parametrize("prefetch_depth", [0, 2])
def test_backends_agree_through_mid_run_scale_up(prefetch_depth):
    job = make_job(prefetch_depth, seed=7)
    virtual, audit_v = run_scenario(job, steps=6, scale_at=2)
    wallclock, audit_w = run_scenario(
        dataclasses.replace(
            job, backend="wallclock", wallclock_time_scale=TIME_SCALE
        ),
        steps=6,
        scale_at=2,
    )
    assert virtual == wallclock
    assert audit_v == audit_w


@pytest.mark.parametrize("prefetch_depth", [0, 2])
def test_backends_agree_through_loader_failure(prefetch_depth):
    job = make_job(prefetch_depth, seed=5)
    virtual, audit_v = run_scenario(job, steps=6, fail_at=2)
    wallclock, audit_w = run_scenario(
        dataclasses.replace(
            job, backend="wallclock", wallclock_time_scale=TIME_SCALE
        ),
        steps=6,
        fail_at=2,
    )
    assert virtual == wallclock
    assert audit_v["exactly_once"] and audit_w["exactly_once"]
    assert audit_v == audit_w


def test_wallclock_failure_run_matches_failure_free_virtual_run():
    """Recovery on real threads reproduces the failure-free sequence."""
    reference_job = make_job(0, seed=13)
    reference, _ = run_scenario(reference_job, steps=6)
    wallclock, audit = run_scenario(
        dataclasses.replace(
            make_job(2, seed=13),
            backend="wallclock",
            wallclock_time_scale=TIME_SCALE,
        ),
        steps=6,
        fail_at=1,
    )
    assert reference == wallclock
    assert audit["exactly_once"]
