"""Unit tests for synthetic dataset generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.samples import Modality
from repro.data.synthetic import (
    build_source_catalog,
    coyo700m_like_spec,
    generate_samples,
    navit_like_spec,
    small_mixed_catalog,
)
from repro.errors import ConfigurationError
from repro.storage.columnar import ColumnarFile


class TestSpecs:
    def test_coyo_spec_shape(self):
        spec = coyo700m_like_spec(num_sources=5, samples_per_source=100)
        assert len(spec.sources) == 5
        assert spec.total_samples() == 500
        assert all(s.modality is Modality.IMAGE for s in spec.sources)

    def test_navit_spec_is_heterogeneous(self):
        spec = navit_like_spec(num_sources=100, samples_per_source=8, seed=0)
        modalities = {s.modality for s in spec.sources}
        assert Modality.IMAGE in modalities
        assert Modality.TEXT in modalities
        costs = [s.cost_multiplier for s in spec.sources]
        assert max(costs) / min(costs) > 5.0

    def test_navit_spec_deterministic(self):
        a = navit_like_spec(num_sources=20, seed=3)
        b = navit_like_spec(num_sources=20, seed=3)
        assert [s.modality for s in a.sources] == [s.modality for s in b.sources]


class TestGenerateSamples:
    def test_records_have_expected_columns(self):
        spec = coyo700m_like_spec(num_sources=1, samples_per_source=10)
        records = generate_samples(spec.sources[0], seed=0)
        assert len(records) == 10
        assert {"sample_id", "modality", "text_tokens", "image_tokens"} <= set(records[0])

    def test_id_offset_applied(self):
        spec = coyo700m_like_spec(num_sources=1, samples_per_source=5)
        records = generate_samples(spec.sources[0], seed=0, id_offset=100)
        assert [r["sample_id"] for r in records] == [100, 101, 102, 103, 104]

    def test_text_sources_have_no_image_tokens(self):
        spec = navit_like_spec(num_sources=40, samples_per_source=4, seed=1)
        text_specs = [s for s in spec.sources if s.modality is Modality.TEXT]
        assert text_specs, "expected at least one text source in 40 draws"
        records = generate_samples(text_specs[0], seed=1)
        assert all(r["image_tokens"] == 0 for r in records)

    def test_decoded_bytes_amplified_for_images(self):
        spec = coyo700m_like_spec(num_sources=1, samples_per_source=20)
        records = generate_samples(spec.sources[0], seed=0)
        assert all(r["decoded_bytes"] >= r["raw_bytes"] for r in records)
        assert any(r["decoded_bytes"] > 5 * r["raw_bytes"] for r in records)

    def test_generation_deterministic(self):
        spec = coyo700m_like_spec(num_sources=1, samples_per_source=50)
        a = generate_samples(spec.sources[0], seed=9)
        b = generate_samples(spec.sources[0], seed=9)
        assert a == b


class TestBuildCatalog:
    def test_catalog_matches_spec(self, filesystem):
        spec = coyo700m_like_spec(num_sources=3, samples_per_source=30)
        catalog = build_source_catalog(spec, filesystem)
        assert len(catalog) == 3
        assert catalog.total_samples() == 90

    def test_files_written_to_filesystem(self, filesystem):
        spec = coyo700m_like_spec(num_sources=2, samples_per_source=10)
        catalog = build_source_catalog(spec, filesystem)
        for source in catalog:
            for path in source.paths:
                assert isinstance(filesystem.read(path), ColumnarFile)

    def test_sample_ids_globally_unique(self, filesystem):
        spec = coyo700m_like_spec(num_sources=3, samples_per_source=20)
        catalog = build_source_catalog(spec, filesystem)
        seen = set()
        for source in catalog:
            file = filesystem.read(source.paths[0])
            for row in range(file.total_rows):
                sid = file.read_row(row)["sample_id"]
                assert sid not in seen
                seen.add(sid)

    def test_empty_spec_rejected(self, filesystem):
        spec = coyo700m_like_spec(num_sources=1, samples_per_source=1)
        empty = type(spec)(group_name="x", sources=(), seed=0)
        with pytest.raises(ConfigurationError):
            build_source_catalog(empty, filesystem)

    def test_catalog_averages_reflect_records(self, filesystem):
        spec = coyo700m_like_spec(num_sources=1, samples_per_source=200)
        catalog = build_source_catalog(spec, filesystem)
        source = catalog.sources()[0]
        records = generate_samples(spec.sources[0], seed=spec.seed)
        assert source.avg_text_tokens == pytest.approx(
            float(np.mean([r["text_tokens"] for r in records]))
        )

    def test_small_mixed_catalog_helper(self, filesystem):
        catalog = small_mixed_catalog(filesystem, num_sources=4, samples_per_source=16)
        assert len(catalog) == 4
        assert catalog.total_samples() == 64
