"""Multi-tenant shared data plane: namespacing, quotas, fair share, preemption.

The headline contracts:

- two jobs on one ActorSystem collide without namespaces (the seed behaviour)
  and coexist with them — disjoint actor names, planner GCS keys,
  ``prepared/`` refs and checkpoint-store namespaces;
- each tenant's delivered batches are byte-identical to the same job run
  solo, regardless of co-tenants, priorities or mid-run preemption;
- the scheduler enforces per-tenant quotas and exposes weighted fair-share
  deficits; the TenantManager preempts lower-tier mirrors for higher-tier
  unmet demand via the drain-retire + retry machinery.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.actors.node import ResourceSpec
from repro.actors.runtime import ActorSystem, ClusterSpec
from repro.actors.scheduler import PlacementRequest, PlacementScheduler, TenantQuota
from repro.core.checkpoint import (
    CheckpointError,
    InMemoryCheckpointStore,
    NamespacedCheckpointStore,
)
from repro.core.framework import MegaScaleData, TrainingJobSpec
from repro.core.tenancy import TenantManager, TenantSpec
from repro.errors import ActorError, ConfigurationError, SchedulingError
from repro.utils.units import GIB


def make_job(seed=0, planning="columnar", prefetch_depth=2, **kwargs):
    return TrainingJobSpec(
        pp=1, dp=2, cp=1, tp=1, encoder=None, strategy="backbone_balance",
        samples_per_dp_step=8, num_microbatches=2, num_sources=3,
        samples_per_source=64, seed=seed, planning=planning,
        prefetch_depth=prefetch_depth, **kwargs,
    )


def delivery_bytes(result):
    """Byte-level signature of a step's per-rank deliveries."""
    return {
        rank: [
            (
                piece.rank,
                piece.microbatch_index,
                piece.token_count,
                piece.payload_bytes,
                piece.metadata_only,
                piece.replicated_from,
            )
            for piece in delivery.slices
        ]
        for rank, delivery in sorted(result.deliveries.items())
    }


def big_cluster():
    return ClusterSpec(accelerator_nodes=4, cpu_pods=2)


# -- the seed collision, and its fix -------------------------------------------------


class TestCrossJobCollisions:
    def test_two_unscoped_jobs_on_one_system_collide(self):
        """Seed behaviour: the second deploy dies on duplicate actor names."""
        first = MegaScaleData.deploy(make_job(seed=0), cluster=big_cluster())
        try:
            with pytest.raises(ActorError, match="duplicate actor name"):
                MegaScaleData.deploy(make_job(seed=1), system=first.system)
        finally:
            first.shutdown()

    def test_namespaced_jobs_coexist_with_disjoint_state(self):
        system = ActorSystem(big_cluster())
        a = MegaScaleData.deploy(make_job(seed=0, namespace="jobA"), system=system)
        b = MegaScaleData.deploy(make_job(seed=1, namespace="jobB"), system=system)
        try:
            names = system.list_actor_names()
            assert any(name.startswith("jobA/") for name in names)
            assert any(name.startswith("jobB/") for name in names)
            assert all(name.startswith(("jobA/", "jobB/")) for name in names)

            for _ in range(3):
                a.run_step()
                b.run_step()

            # Every surviving GCS key is tenant-scoped (prepared/ refs are
            # transient — published by scoped loader name, consumed by take).
            keys = system.gcs.keys()
            assert keys, "expected planner keys on the shared GCS"
            assert all(
                key.startswith(("jobA/", "jobB/")) or "/jobA/" in key or "/jobB/" in key
                for key in keys
            ), keys
            # Planner position markers are scoped per tenant.
            assert system.gcs.get("jobA/planner/last_step") is not None
            assert system.gcs.get("jobB/planner/last_step") is not None
            assert system.gcs.get("planner/last_step") is None
        finally:
            a.shutdown()
            b.shutdown()

    def test_scoped_shutdown_leaves_co_tenant_running(self):
        system = ActorSystem(big_cluster())
        a = MegaScaleData.deploy(make_job(seed=0, namespace="jobA"), system=system)
        b = MegaScaleData.deploy(make_job(seed=1, namespace="jobB"), system=system)
        a.shutdown()
        try:
            assert not any(
                name.startswith("jobA/") for name in system.list_actor_names()
            )
            # The co-tenant still runs full steps after A tore down.
            result = b.run_step()
            assert result.deliveries
        finally:
            b.shutdown()

    def test_shared_checkpoint_store_namespaces_disjoint(self):
        system = ActorSystem(big_cluster())
        store = InMemoryCheckpointStore()
        a = MegaScaleData.deploy(
            make_job(seed=0, namespace="jobA"), system=system, checkpoint_store=store
        )
        b = MegaScaleData.deploy(
            make_job(seed=1, namespace="jobB"), system=system, checkpoint_store=store
        )
        try:
            a.run_step()
            b.run_step()
            a.save_checkpoint()
            b.save_checkpoint()
            assert store.steps("jobA/run") and store.steps("jobB/run")
            assert not store.steps("run")
            # Delivery manifests land in per-tenant namespaces too.
            assert store.steps("jobA/delivery/manifests")
            assert store.steps("jobB/delivery/manifests")
        finally:
            a.shutdown()
            b.shutdown()


# -- the namespaced checkpoint-store wrapper -----------------------------------------


class TestNamespacedCheckpointStore:
    def test_prefixes_every_namespace(self):
        backend = InMemoryCheckpointStore()
        scoped = NamespacedCheckpointStore(backend, "jobA")
        scoped.save("planner/plans", 3, {"step": 3})
        assert backend.load("jobA/planner/plans", 3) == {"step": 3}
        assert scoped.load("planner/plans", 3) == {"step": 3}
        assert scoped.load_latest("planner/plans") == (3, {"step": 3})
        assert scoped.steps("planner/plans") == [3]

    def test_rewrapping_nests_on_the_same_backend(self):
        backend = InMemoryCheckpointStore()
        outer = NamespacedCheckpointStore(NamespacedCheckpointStore(backend, "a"), "b")
        assert outer.backend is backend
        assert outer.prefix == "a/b"

    def test_clear_refused_on_scoped_view(self):
        scoped = NamespacedCheckpointStore(InMemoryCheckpointStore(), "jobA")
        with pytest.raises(CheckpointError):
            scoped.clear()


# -- scheduler quotas and fair share -------------------------------------------------


def tiny_scheduler():
    return PlacementScheduler(
        ClusterSpec(
            accelerator_nodes=1,
            cpu_pods=0,
            accelerator_resources=ResourceSpec(cpu_cores=32.0, memory_bytes=64 * GIB),
        ).build_nodes()
    )


class TestSchedulerTenancy:
    def test_cpu_quota_rejected_at_admission(self):
        scheduler = tiny_scheduler()
        scheduler.register_tenant(TenantQuota(tenant="t", cpu_limit=4.0))
        scheduler.place(PlacementRequest("t/a", 3.0, GIB, tenant="t"))
        with pytest.raises(SchedulingError, match="CPU quota"):
            scheduler.place(PlacementRequest("t/b", 2.0, GIB, tenant="t"))

    def test_memory_quota_rejected_at_admission(self):
        scheduler = tiny_scheduler()
        scheduler.register_tenant(TenantQuota(tenant="t", memory_limit=2 * GIB))
        scheduler.place(PlacementRequest("t/a", 1.0, GIB, tenant="t"))
        with pytest.raises(SchedulingError, match="memory quota"):
            scheduler.place(PlacementRequest("t/b", 1.0, 2 * GIB, tenant="t"))

    def test_release_refunds_usage(self):
        scheduler = tiny_scheduler()
        scheduler.register_tenant(TenantQuota(tenant="t", cpu_limit=4.0))
        decision = scheduler.place(PlacementRequest("t/a", 4.0, GIB, tenant="t"))
        scheduler.release("t/a", decision.node_name, 4.0, GIB, tenant="t")
        assert scheduler.tenant_usage("t")["cpu_cores"] == 0.0
        # Quota headroom is back.
        scheduler.place(PlacementRequest("t/b", 4.0, GIB, tenant="t"))

    def test_fair_share_deficit_orders_underserved_first(self):
        scheduler = tiny_scheduler()
        scheduler.register_tenant(TenantQuota(tenant="big", weight=3.0))
        scheduler.register_tenant(TenantQuota(tenant="small", weight=1.0))
        scheduler.place(PlacementRequest("big/a", 4.0, GIB, tenant="big"))
        scheduler.place(PlacementRequest("small/a", 12.0, GIB, tenant="small"))
        shares = scheduler.tenant_shares()
        # big is entitled to 3/4 of the 16 reserved cores but holds 4.
        assert shares["big"]["deficit"] == pytest.approx(8.0)
        assert shares["small"]["deficit"] == pytest.approx(-8.0)
        assert shares["big"]["share"] == pytest.approx(0.25)

    def test_unmetered_requests_bypass_quotas(self):
        scheduler = tiny_scheduler()
        scheduler.register_tenant(TenantQuota(tenant="t", cpu_limit=1.0))
        scheduler.place(PlacementRequest("free/a", 8.0, GIB))  # no tenant tag
        assert scheduler.tenant_usage("t")["cpu_cores"] == 0.0


# -- TenantManager admission and accounting ------------------------------------------


class TestTenantManager:
    def test_admit_rejects_duplicates_and_mismatches(self):
        manager = TenantManager(cluster=big_cluster())
        try:
            manager.admit(TenantSpec(name="a", job=make_job(seed=0)))
            with pytest.raises(ConfigurationError, match="already admitted"):
                manager.admit(TenantSpec(name="a", job=make_job(seed=1)))
            with pytest.raises(ConfigurationError, match="backend"):
                manager.admit(
                    TenantSpec(name="b", job=make_job(seed=1, backend="wallclock"))
                )
            with pytest.raises(ConfigurationError, match="lane_model"):
                manager.admit(
                    TenantSpec(name="c", job=make_job(seed=1, lane_model="amortized"))
                )
        finally:
            manager.shutdown()

    def test_quota_too_small_for_base_actors_rejects_admission(self):
        manager = TenantManager(cluster=big_cluster())
        try:
            with pytest.raises(SchedulingError, match="quota"):
                manager.admit(
                    TenantSpec(name="tiny", job=make_job(seed=0), cpu_quota=1.0)
                )
        finally:
            manager.shutdown()

    def test_run_reports_per_tenant_overlap_and_shares(self):
        manager = TenantManager(cluster=big_cluster())
        try:
            manager.admit(TenantSpec(name="alpha", job=make_job(seed=0), priority=1))
            manager.admit(TenantSpec(name="beta", job=make_job(seed=1), weight=2.0))
            report = manager.run(3)
            assert set(report["tenants"]) == {"alpha", "beta"}
            for entry in report["tenants"].values():
                assert entry["steps"] == 3.0
                assert entry["hidden_data_time_s"] >= 0.0
                assert "tenant_share" in entry
                assert "mean_cpu_share" in entry
            assert report["aggregate"]["total_steps"] == 6.0
            assert report["aggregate"]["aggregate_steps_per_s"] > 0.0
        finally:
            manager.shutdown()

    def test_evict_returns_capacity_to_the_pool(self):
        manager = TenantManager(cluster=big_cluster())
        try:
            manager.admit(TenantSpec(name="alpha", job=make_job(seed=0)))
            used = manager.system.scheduler.tenant_usage("alpha")["cpu_cores"]
            assert used > 0.0
            manager.evict("alpha")
            assert manager.system.scheduler.tenant_usage("alpha")["cpu_cores"] == 0.0
        finally:
            manager.shutdown()

    def test_overlap_ledger_carries_tenant_tag(self):
        manager = TenantManager(cluster=big_cluster())
        try:
            deployment = manager.admit(TenantSpec(name="alpha", job=make_job(seed=0)))
            assert deployment.overlap.tenant == "alpha"
        finally:
            manager.shutdown()


# -- preemption ----------------------------------------------------------------------


def preemption_scenario(enable_preemption=True):
    """A pool sized so the high-tier tenant's burst needs the low tier's mirrors.

    Both tenants fit their base fleets; the low-priority tenant scales one
    source up first and fills the remaining capacity, so the high-priority
    tenant's later scale-up is placement-rejected and queues — the preemption
    trigger.
    """
    manager = TenantManager(
        cluster=ClusterSpec(
            accelerator_nodes=2,
            cpu_pods=1,
            accelerator_resources=ResourceSpec(cpu_cores=50.0, memory_bytes=96 * GIB),
        ),
        enable_preemption=enable_preemption,
    )
    high = manager.admit(TenantSpec(name="prod", job=make_job(seed=0), priority=2))
    low = manager.admit(TenantSpec(name="batch", job=make_job(seed=1), priority=0))
    return manager, high, low


class TestPreemption:
    def test_high_tier_burst_preempts_low_tier_mirrors(self):
        manager, high, low = preemption_scenario()
        try:
            for _ in range(2):
                high.run_step()
                low.run_step()
            # Low tier absorbs the remaining pool capacity with mirrors.
            low.scale_source("navit_data/src000", 6)
            assert low.fleet.member_count("navit_data/src000") > 1
            # High tier now bursts; some spawns must be capacity-rejected.
            high.scale_source("navit_data/src000", 6)
            assert high.fleet.pending_spawn_count() > 0
            mirrors_before = low.fleet.member_count("navit_data/src000")
            spawned = manager.service_round(2)
            assert manager.preemptions, "expected at least one preemption event"
            event = manager.preemptions[0]
            assert event.victim == "batch" and event.beneficiary == "prod"
            assert spawned >= 1
            assert low.fleet.member_count("navit_data/src000") < mirrors_before
            # Victim keeps its canonical members: service continues.
            assert low.run_step().deliveries
            assert high.run_step().deliveries
        finally:
            manager.shutdown()

    def test_preemption_disabled_leaves_victims_alone(self):
        manager, high, low = preemption_scenario(enable_preemption=False)
        try:
            for _ in range(2):
                high.run_step()
                low.run_step()
            low.scale_source("navit_data/src000", 6)
            high.scale_source("navit_data/src000", 6)
            assert high.fleet.pending_spawn_count() > 0
            mirrors_before = low.fleet.member_count("navit_data/src000")
            manager.service_round(2)
            assert not manager.preemptions
            assert low.fleet.member_count("navit_data/src000") == mirrors_before
        finally:
            manager.shutdown()

    def test_equal_priority_never_preempts(self):
        manager = TenantManager(
            cluster=ClusterSpec(
                accelerator_nodes=2,
                cpu_pods=1,
                accelerator_resources=ResourceSpec(cpu_cores=50.0, memory_bytes=96 * GIB),
            )
        )
        try:
            a = manager.admit(TenantSpec(name="a", job=make_job(seed=0), priority=1))
            b = manager.admit(TenantSpec(name="b", job=make_job(seed=1), priority=1))
            a.run_step()
            b.run_step()
            b.scale_source("navit_data/src000", 6)
            a.scale_source("navit_data/src000", 6)
            manager.service_round(1)
            assert not manager.preemptions
        finally:
            manager.shutdown()


# -- byte-identity under co-tenancy --------------------------------------------------


def run_solo(seed, planning, depth, num_steps):
    solo = MegaScaleData.deploy(
        make_job(seed=seed, planning=planning, prefetch_depth=depth),
        cluster=big_cluster(),
    )
    try:
        return [delivery_bytes(solo.run_step()) for _ in range(num_steps)]
    finally:
        solo.shutdown()


@given(
    seed=st.integers(min_value=0, max_value=15),
    planning=st.sampled_from(["columnar", "legacy"]),
    depth=st.integers(min_value=1, max_value=2),
    co_priority=st.sampled_from([0, 2]),
)
@settings(max_examples=6, deadline=None)
def test_tenant_batches_byte_identical_to_solo_run(seed, planning, depth, co_priority):
    """The multi-tenant determinism contract: co-tenants, priorities and
    fair-share contention change timing and capacity, never bytes."""
    num_steps = 4
    solo_steps = run_solo(seed, planning, depth, num_steps)

    manager = TenantManager(cluster=big_cluster())
    try:
        observed = manager.admit(
            TenantSpec(
                name="observed",
                job=make_job(seed=seed, planning=planning, prefetch_depth=depth),
                priority=1,
            )
        )
        other = manager.admit(
            TenantSpec(
                name="other",
                job=make_job(seed=seed + 17, planning=planning, prefetch_depth=depth),
                priority=co_priority,
                weight=2.0,
            )
        )
        shared_steps = []
        for round_index in range(num_steps):
            shared_steps.append(delivery_bytes(observed.run_step()))
            other.run_step()
            manager.service_round(round_index)
        assert shared_steps == solo_steps
    finally:
        manager.shutdown()


def test_tenant_batches_byte_identical_under_mid_run_preemption():
    """Preemption drain-retires the victim's mirrors mid-run; the victim's
    delivered batches stay byte-identical to its solo run."""
    num_steps = 6
    solo_steps = run_solo(1, "columnar", 2, num_steps)

    manager, high, low = preemption_scenario()
    try:
        shared_steps = []
        for round_index in range(num_steps):
            shared_steps.append(delivery_bytes(low.run_step()))
            high.run_step()
            if round_index == 1:
                # The victim grows mirrors, then the high tier bursts over
                # the remaining capacity at the next boundary.
                low.scale_source("navit_data/src000", 6)
                high.scale_source("navit_data/src000", 6)
            manager.service_round(round_index)
        assert manager.preemptions, "scenario must actually preempt"
        assert shared_steps == solo_steps
    finally:
        manager.shutdown()


@pytest.mark.slow
def test_wallclock_shared_system_smoke():
    """Both backends serve multi-tenant deployments: a wallclock pool runs two
    tenants and their batches match the virtual solo run byte for byte."""
    num_steps = 3
    solo_steps = run_solo(2, "columnar", 1, num_steps)

    manager = TenantManager(
        cluster=big_cluster(), backend="wallclock", time_scale=0.001
    )
    try:
        observed = manager.admit(
            TenantSpec(
                name="observed",
                job=make_job(
                    seed=2, prefetch_depth=1, backend="wallclock",
                    wallclock_time_scale=0.001,
                ),
                priority=1,
            )
        )
        other = manager.admit(
            TenantSpec(
                name="other",
                job=make_job(
                    seed=11, prefetch_depth=1, backend="wallclock",
                    wallclock_time_scale=0.001,
                ),
            )
        )
        shared_steps = []
        for round_index in range(num_steps):
            shared_steps.append(delivery_bytes(observed.run_step()))
            other.run_step()
            manager.service_round(round_index)
        assert shared_steps == solo_steps
    finally:
        manager.shutdown()
