"""Unit tests for repro.utils (units, ids, rng)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.ids import IdAllocator
from repro.utils.rng import derive_rng, spawn_rngs
from repro.utils.units import GIB, KIB, MIB, bytes_to_gib, bytes_to_mib, format_bytes, format_seconds


class TestUnits:
    def test_constants_are_powers_of_two(self):
        assert KIB == 1024
        assert MIB == 1024**2
        assert GIB == 1024**3

    def test_bytes_to_mib(self):
        assert bytes_to_mib(2 * MIB) == pytest.approx(2.0)

    def test_bytes_to_gib(self):
        assert bytes_to_gib(3 * GIB) == pytest.approx(3.0)

    def test_format_bytes_small(self):
        assert format_bytes(512) == "512 B"

    def test_format_bytes_mib(self):
        assert format_bytes(2 * MIB) == "2.00 MiB"

    def test_format_bytes_gib(self):
        assert "GiB" in format_bytes(5 * GIB)

    def test_format_seconds_microseconds(self):
        assert "us" in format_seconds(5e-6)

    def test_format_seconds_milliseconds(self):
        assert "ms" in format_seconds(0.25)

    def test_format_seconds_minutes(self):
        assert format_seconds(75) == "1m 15.0s"


class TestIdAllocator:
    def test_ids_are_monotonic(self):
        allocator = IdAllocator()
        assert [allocator.next("a") for _ in range(3)] == [0, 1, 2]

    def test_namespaces_are_independent(self):
        allocator = IdAllocator()
        allocator.next("a")
        assert allocator.next("b") == 0

    def test_next_name_format(self):
        allocator = IdAllocator()
        assert allocator.next_name("loader") == "loader-0"
        assert allocator.next_name("loader") == "loader-1"

    def test_reset_single_namespace(self):
        allocator = IdAllocator()
        allocator.next("a")
        allocator.next("b")
        allocator.reset("a")
        assert allocator.next("a") == 0
        assert allocator.next("b") == 1

    def test_reset_all(self):
        allocator = IdAllocator()
        allocator.next("a")
        allocator.reset()
        assert allocator.next("a") == 0


class TestRng:
    def test_same_seed_same_stream(self):
        a = derive_rng(42, "x").random(5)
        b = derive_rng(42, "x").random(5)
        assert np.allclose(a, b)

    def test_different_labels_different_streams(self):
        a = derive_rng(42, "x").random(5)
        b = derive_rng(42, "y").random(5)
        assert not np.allclose(a, b)

    def test_different_seeds_different_streams(self):
        a = derive_rng(1, "x").random(5)
        b = derive_rng(2, "x").random(5)
        assert not np.allclose(a, b)

    def test_spawn_rngs_count_and_independence(self):
        rngs = spawn_rngs(0, 4)
        assert len(rngs) == 4
        draws = [rng.random() for rng in rngs]
        assert len(set(draws)) == 4

    def test_labels_accept_non_strings(self):
        rng = derive_rng(0, "source", 3, 2.5)
        assert 0.0 <= rng.random() < 1.0
