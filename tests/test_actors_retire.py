"""Mid-run actor retirement and indexed-heap invalidation regressions.

Covers the elastic-fleet runtime contract: `retire_actor` drains or hands off
pending events, destroyed/retired actors never receive another dispatch, and
stale indexed-heap entries (including across name reuse) neither leak nor
perturb the dispatch order of surviving actors — proven by trace equivalence
against the ``dispatcher="linear"`` reference.
"""

from __future__ import annotations

import pytest

from repro.actors.actor import Actor
from repro.actors.runtime import ActorSystem, ClusterSpec
from repro.errors import ActorError


class Recorder(Actor):
    """Counts invocations so tests can see exactly what executed."""

    role = "recorder"

    def __init__(self, log: list | None = None, tag: str = "") -> None:
        super().__init__()
        self.log = log if log is not None else []
        self.tag = tag

    def work(self, token: int) -> int:
        self.log.append((self.tag or self.actor_name, token))
        return token


def make_system(dispatcher: str = "indexed") -> ActorSystem:
    return ActorSystem(
        ClusterSpec(accelerator_nodes=1, cpu_pods=1), dispatcher=dispatcher
    )


class TestRetireActor:
    def test_drain_retirement_executes_queued_calls_first(self):
        system = make_system()
        log: list = []
        handle = system.create_actor(lambda: Recorder(log), name="worker")
        futures = [handle.submit("work", token) for token in range(3)]
        assert system.retire_actor("worker") is False  # queue non-empty: draining
        assert system.retiring("worker")
        with pytest.raises(ActorError):
            handle.submit("work", 99)  # no new calls while draining
        system.drain()
        assert [token for _, token in log] == [0, 1, 2]
        assert all(future.result() == token for token, future in enumerate(futures))
        # The drain completed: the actor is gone and its resources released.
        assert "worker" not in system.list_actor_names()
        assert not system.retiring("worker")

    def test_empty_queue_retires_immediately(self):
        system = make_system()
        system.create_actor(lambda: Recorder(), name="idle", cpu_cores=2.0)
        node = system.actor_node("idle")
        free_before = system.node(node).available_cpu
        assert system.retire_actor("idle") is True
        assert "idle" not in system.list_actor_names()
        assert system.node(node).available_cpu == free_before + 2.0

    def test_handoff_moves_pending_calls_to_successor(self):
        system = make_system()
        log: list = []
        retiree = system.create_actor(lambda: Recorder(log, tag="retiree"), name="retiree")
        system.create_actor(lambda: Recorder(log, tag="successor"), name="successor")
        futures = [retiree.submit("work", token) for token in range(3)]
        assert system.retire_actor("retiree", mode="handoff", successor="successor")
        assert "retiree" not in system.list_actor_names()
        system.drain()
        # Every handed-off call executed on the successor, in submit order.
        assert log == [("successor", 0), ("successor", 1), ("successor", 2)]
        assert [future.result() for future in futures] == [0, 1, 2]

    def test_handoff_requires_live_distinct_successor(self):
        system = make_system()
        system.create_actor(lambda: Recorder(), name="only")
        with pytest.raises(ActorError):
            system.retire_actor("only", mode="handoff", successor="only")
        with pytest.raises(ActorError):
            system.retire_actor("only", mode="handoff", successor="ghost")
        with pytest.raises(ActorError):
            system.retire_actor("only", mode="bogus")

    def test_cancel_during_drain_finalizes_retirement(self):
        system = make_system()
        handle = system.create_actor(lambda: Recorder(), name="worker")
        handle.submit("work", 1)
        assert system.retire_actor("worker") is False
        system.cancel_pending("worker")
        # Cancellation emptied the queue; the retirement must not dangle.
        assert "worker" not in system.list_actor_names()

    def test_tick_never_dispatches_to_destroyed_actor(self):
        system = make_system()
        log: list = []
        handle = system.create_actor(lambda: Recorder(log), name="victim")
        survivor = system.create_actor(lambda: Recorder(log), name="survivor")
        doomed = [handle.submit("work", token) for token in range(2)]
        survivor.submit("work", 7)
        system.stop_actor("victim")
        system.drain()
        # The destroyed actor's calls failed without executing; the survivor ran.
        assert log == [("survivor", 7)]
        assert all(isinstance(f.exception(), ActorError) for f in doomed)

    def test_mid_run_spawn_with_warmup_delays_first_event(self):
        system = make_system()
        system.create_actor(lambda: Recorder(), name="early")
        system.advance_clock(1.0)
        late = system.create_actor(lambda: Recorder(), name="late", warmup_s=2.5)
        future = late.submit("work", 1)
        system.drain()
        # The spawned actor's first event cannot start before its warm-up.
        assert future.available_at_s >= 3.5


def run_scripted_lifecycle(dispatcher: str):
    """A scripted create/submit/destroy/reuse sequence, returning the trace.

    Exercises the stale-heap hazards: an actor accumulating multiple heap
    entries (head cancellation re-pushes), destruction with queued events,
    and immediate name reuse with new submissions.
    """
    system = make_system(dispatcher)
    system.dispatch_trace = []
    log: list = []

    a = system.create_actor(lambda: Recorder(log, tag="a"), name="a")
    b = system.create_actor(lambda: Recorder(log, tag="b"), name="b")
    c = system.create_actor(lambda: Recorder(log, tag="c"), name="c")

    # Give "a" two heap entries: cancel its head so the next call re-pushes.
    head = a.submit_timed("work", 0, earliest_start_s=5.0)
    a.submit_timed("work", 1, earliest_start_s=0.5)
    head.cancel()
    b.submit_timed("work", 2, earliest_start_s=1.0)
    system.tick(1)

    # Destroy "a" with a queued event, then immediately reuse its name.
    a.submit_timed("work", 3, earliest_start_s=9.0)
    system.stop_actor("a")
    a2 = system.create_actor(lambda: Recorder(log, tag="a2"), name="a")
    a2.submit_timed("work", 4, earliest_start_s=0.25)
    c.submit_timed("work", 5, earliest_start_s=0.75)
    system.tick(2)

    # Retire the reused name while another actor still has work queued.
    b.submit_timed("work", 6, earliest_start_s=2.0)
    a2.submit_timed("work", 7, earliest_start_s=2.5)
    system.retire_actor("a")
    system.drain()
    return system.dispatch_trace, log


class TestStaleHeapEntries:
    def test_destroy_and_reuse_matches_linear_dispatch(self):
        """Regression (indexed vs linear): destroying/retiring actors with
        queued events — including reusing the freed name — must produce the
        exact same dispatch trace as the linear-scan reference."""
        indexed_trace, indexed_log = run_scripted_lifecycle("indexed")
        linear_trace, linear_log = run_scripted_lifecycle("linear")
        assert indexed_trace == linear_trace
        assert indexed_log == linear_log

    def test_heap_count_stays_exact_across_name_reuse(self):
        """The count-corruption hazard: phantom entries of a destroyed
        incarnation must not be charged against the reused name's live
        entries (which would strand a non-empty queue unrepresented)."""
        system = make_system()
        log: list = []
        a = system.create_actor(lambda: Recorder(log, tag="old"), name="a")
        head = a.submit_timed("work", 0, earliest_start_s=5.0)
        a.submit_timed("work", 1, earliest_start_s=6.0)
        head.cancel()  # old incarnation now holds two heap entries
        system.stop_actor("a")
        assert "a" not in system._heap_entries

        a2 = system.create_actor(lambda: Recorder(log, tag="new"), name="a")
        future = a2.submit_timed("work", 2, earliest_start_s=0.0)
        ran = system.drain()
        assert ran == 1
        assert future.result() == 2
        assert log == [("new", 2)]
        # All phantom entries were discarded and the accounting is clean.
        assert system._heap_entries.get("a", 0) == 0
        assert not system._heap

    def test_pending_events_of_dead_actor_fail_not_dispatch(self):
        system = make_system()
        log: list = []
        a = system.create_actor(lambda: Recorder(log), name="a")
        future = a.submit("work", 0)
        system.stop_actor("a")
        assert system.drain() == 0
        assert isinstance(future.exception(), ActorError)
        assert log == []
