"""Unit tests for mixture schedules."""

from __future__ import annotations

import pytest

from repro.data.mixture import MixturePhase, MixtureSchedule
from repro.errors import MixtureError
from repro.utils.rng import derive_rng


class TestStatic:
    def test_weights_normalized(self):
        schedule = MixtureSchedule.static({"a": 2.0, "b": 2.0})
        weights = schedule.weights_at(0)
        assert weights == {"a": 0.5, "b": 0.5}

    def test_negative_weight_rejected(self):
        with pytest.raises(MixtureError):
            MixtureSchedule.static({"a": -1.0, "b": 2.0})

    def test_zero_sum_rejected(self):
        with pytest.raises(MixtureError):
            MixtureSchedule.static({"a": 0.0})

    def test_uniform(self):
        schedule = MixtureSchedule.uniform(["a", "b", "c", "d"])
        assert schedule.weights_at(10)["c"] == pytest.approx(0.25)

    def test_uniform_requires_sources(self):
        with pytest.raises(MixtureError):
            MixtureSchedule.uniform([])

    def test_negative_step_rejected(self):
        schedule = MixtureSchedule.uniform(["a"])
        with pytest.raises(MixtureError):
            schedule.weights_at(-1)


class TestStaged:
    def test_phase_switching(self):
        schedule = MixtureSchedule.staged(
            [
                MixturePhase(0, {"easy": 0.9, "hard": 0.1}),
                MixturePhase(100, {"easy": 0.3, "hard": 0.7}),
            ]
        )
        assert schedule.weights_at(50)["easy"] == pytest.approx(0.9)
        assert schedule.weights_at(150)["hard"] == pytest.approx(0.7)

    def test_first_phase_must_start_at_zero(self):
        with pytest.raises(MixtureError):
            MixtureSchedule.staged([MixturePhase(10, {"a": 1.0})])

    def test_missing_source_in_phase_gets_zero(self):
        schedule = MixtureSchedule.staged(
            [MixturePhase(0, {"a": 1.0}), MixturePhase(5, {"b": 1.0})]
        )
        assert schedule.weights_at(0)["b"] == 0.0
        assert schedule.weights_at(6)["a"] == 0.0

    def test_empty_phase_list_rejected(self):
        with pytest.raises(MixtureError):
            MixtureSchedule.staged([])


class TestWarmup:
    def test_interpolation(self):
        schedule = MixtureSchedule.warmup({"a": 1.0, "b": 0.0001}, {"a": 0.0001, "b": 1.0}, 100)
        early = schedule.weights_at(0)
        late = schedule.weights_at(100)
        assert early["a"] > 0.9
        assert late["b"] > 0.9
        mid = schedule.weights_at(50)
        assert 0.4 < mid["a"] < 0.6

    def test_requires_positive_steps(self):
        with pytest.raises(MixtureError):
            MixtureSchedule.warmup({"a": 1.0}, {"a": 1.0}, 0)


class TestAdaptive:
    def test_upweights_high_loss_sources(self):
        losses = {"hard": 5.0, "easy": 1.0}
        schedule = MixtureSchedule.adaptive(["hard", "easy"], lambda step: losses)
        weights = schedule.weights_at(0)
        assert weights["hard"] > weights["easy"]

    def test_refresh_interval_caches_weights(self):
        calls = []

        def metric_fn(step):
            calls.append(step)
            return {"a": 1.0, "b": 1.0}

        schedule = MixtureSchedule.adaptive(["a", "b"], metric_fn, refresh_every=5)
        for step in range(10):
            schedule.weights_at(step)
        assert calls == [0, 5]

    def test_invalid_temperature(self):
        with pytest.raises(MixtureError):
            MixtureSchedule.adaptive(["a"], lambda s: {"a": 1.0}, temperature=0.0)


class TestSamplingAndAverages:
    def test_sample_sources_respects_weights(self):
        schedule = MixtureSchedule.static({"a": 0.9, "b": 0.1})
        picks = schedule.sample_sources(0, 2000, derive_rng(0, "mix"))
        frac_a = picks.count("a") / len(picks)
        assert 0.85 < frac_a < 0.95

    def test_sample_sources_deterministic(self):
        schedule = MixtureSchedule.static({"a": 0.5, "b": 0.5})
        a = schedule.sample_sources(0, 50, derive_rng(1, "m"))
        b = schedule.sample_sources(0, 50, derive_rng(1, "m"))
        assert a == b

    def test_moving_average_tracks_schedule_change(self):
        schedule = MixtureSchedule.staged(
            [MixturePhase(0, {"a": 1.0, "b": 0.0001}), MixturePhase(10, {"a": 0.0001, "b": 1.0})]
        )
        avg_before = schedule.moving_average(5, window=5)
        avg_after = schedule.moving_average(30, window=5)
        assert avg_before["a"] > 0.9
        assert avg_after["b"] > 0.9

    def test_moving_average_window_validation(self):
        schedule = MixtureSchedule.uniform(["a"])
        with pytest.raises(MixtureError):
            schedule.moving_average(5, window=0)


class TestWeightsMemo:
    def test_weights_at_is_memoized_per_step(self):
        calls = []

        def weight_fn(step):
            calls.append(step)
            return {"a": 0.5, "b": 0.5}

        schedule = MixtureSchedule(weight_fn, ["a", "b"])
        for _ in range(5):
            schedule.weights_at(3)
        schedule.moving_average(3, window=4)  # re-reads steps 0..3
        assert calls.count(3) == 1

    def test_memoized_weights_are_copies(self):
        schedule = MixtureSchedule.static({"a": 1.0, "b": 1.0})
        first = schedule.weights_at(0)
        first["a"] = 99.0  # mutating the returned dict must not poison the memo
        assert schedule.weights_at(0)["a"] == pytest.approx(0.5)

    def test_memo_is_bounded(self):
        schedule = MixtureSchedule.static({"a": 1.0})
        for step in range(1000):
            schedule.weights_at(step)
        assert len(schedule._weights_memo) <= 256
