"""Unit tests for fault tolerance: shadow loaders, checkpoints, recovery."""

from __future__ import annotations

import pytest

from repro.actors.actor import ActorState
from repro.actors.runtime import ActorSystem, ClusterSpec
from repro.core.fault_tolerance import (
    FaultToleranceConfig,
    FaultToleranceError,
    FaultToleranceManager,
)
from repro.core.source_loader import SourceLoader
from repro.utils.units import GIB


@pytest.fixture()
def system():
    return ActorSystem(ClusterSpec(accelerator_nodes=1, cpu_pods=1))


@pytest.fixture()
def manager(system):
    return FaultToleranceManager(system, FaultToleranceConfig(loader_checkpoint_interval=5))


def spawn_pair(system, manager, catalog, filesystem, index=0):
    source = catalog.sources()[index]
    primary = system.create_actor(
        lambda: SourceLoader(source, filesystem, buffer_size=8),
        name=f"primary-{index}",
        memory_bytes=GIB,
    )
    shadow = system.create_actor(
        lambda: SourceLoader(source, filesystem, buffer_size=8),
        name=f"shadow-{index}",
        memory_bytes=GIB,
    )
    manager.register_shadow(primary, shadow, source.name)
    return primary, shadow


class TestDetection:
    def test_healthy_loader_probe(self, system, manager, small_catalog, filesystem):
        primary, _ = spawn_pair(system, manager, small_catalog, filesystem)
        assert manager.probe_loader(primary)
        assert manager.detect_failures([primary]) == []

    def test_dead_loader_detected(self, system, manager, small_catalog, filesystem):
        primary, _ = spawn_pair(system, manager, small_catalog, filesystem)
        system.failures.fail(primary.name)
        assert not manager.probe_loader(primary)
        assert manager.detect_failures([primary]) == [primary]

    def test_timeout_detected(self, system, manager, small_catalog, filesystem):
        primary, _ = spawn_pair(system, manager, small_catalog, filesystem)
        system.failures.timeout(primary.name)
        assert manager.detect_failures([primary]) == [primary]


class TestCheckpointing:
    def test_checkpoint_written_on_interval(self, system, manager, small_catalog, filesystem):
        primary, _ = spawn_pair(system, manager, small_catalog, filesystem)
        assert manager.checkpoint_loader(primary, step=0)
        assert not manager.checkpoint_loader(primary, step=3)
        assert manager.checkpoint_loader(primary, step=5)
        checkpoint = manager.last_loader_checkpoint(primary.name)
        assert checkpoint["step"] == 5

    def test_checkpoint_requires_loader(self, system, manager):
        from repro.actors.actor import Actor

        other = system.create_actor(Actor, name="not-a-loader")
        with pytest.raises(FaultToleranceError):
            manager.checkpoint_loader(other, step=0)


class TestRecovery:
    def test_shadow_promotion(self, system, manager, small_catalog, filesystem):
        primary, shadow = spawn_pair(system, manager, small_catalog, filesystem)
        manager.checkpoint_loader(primary, step=0)
        system.kill_actor(primary.name)
        promoted = manager.recover_loader(primary, step=7)
        assert promoted.name == shadow.name
        events = manager.events()
        assert events[-1].kind == "shadow_promotion"
        assert events[-1].recovery_latency_s > 0
        assert manager.shadow_for(primary.name) is None

    def test_restart_without_shadow(self, system, small_catalog, filesystem):
        manager = FaultToleranceManager(system)
        source = small_catalog.sources()[0]
        handle = system.create_actor(
            lambda: SourceLoader(source, filesystem, buffer_size=8),
            name="solo-loader",
            memory_bytes=GIB,
        )
        manager.checkpoint_loader(handle, step=0)
        system.kill_actor(handle.name)
        recovered = manager.recover_loader(handle, step=10)
        assert recovered.state is ActorState.RUNNING
        assert manager.events()[-1].kind == "restart"

    def test_replay_gap_adds_latency(self, system, manager, small_catalog, filesystem):
        primary, _ = spawn_pair(system, manager, small_catalog, filesystem)
        manager.checkpoint_loader(primary, step=0)
        system.kill_actor(primary.name)
        manager.recover_loader(primary, step=100)
        long_gap = manager.events()[-1].recovery_latency_s

        primary2, _ = spawn_pair(system, manager, small_catalog, filesystem, index=1)
        manager.checkpoint_loader(primary2, step=0)
        system.kill_actor(primary2.name)
        manager.recover_loader(primary2, step=1)
        short_gap = manager.events()[-1].recovery_latency_s
        assert long_gap > short_gap

    def test_coordinator_restart_preserves_state(self, system, manager, small_catalog, filesystem):
        source = small_catalog.sources()[0]
        handle = system.create_actor(
            lambda: SourceLoader(source, filesystem, buffer_size=8),
            name="coordinator-like",
            memory_bytes=GIB,
        )
        ids = [m.sample_id for m in handle.instance().summary_buffer()[:2]]
        handle.call("prepare", ids)
        recovered = manager.recover_coordinator(handle, step=3)
        assert recovered.instance().stats.samples_prepared == 2

    def test_shadow_memory_accounted(self, system, manager, small_catalog, filesystem):
        spawn_pair(system, manager, small_catalog, filesystem)
        assert manager.shadow_count() == 1
        assert manager.shadow_memory_bytes() > 0

    def test_ettr_decreases_with_recovery_time(self, system, manager, small_catalog, filesystem):
        primary, _ = spawn_pair(system, manager, small_catalog, filesystem)
        assert manager.effective_training_time_ratio(100, 10.0) == pytest.approx(1.0)
        system.kill_actor(primary.name)
        manager.recover_loader(primary, step=50)
        ettr = manager.effective_training_time_ratio(100, 10.0)
        assert 0.0 < ettr < 1.0

    def test_ettr_zero_iterations(self, manager):
        assert manager.effective_training_time_ratio(0, 10.0) == 0.0
