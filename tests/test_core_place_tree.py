"""Unit tests for the ClientPlaceTree topology abstraction."""

from __future__ import annotations

import pytest

from repro.core.place_tree import ClientPlaceTree
from repro.errors import OrchestrationError
from repro.parallelism.mesh import DeviceMesh


class TestConsumers:
    def test_num_consumers_per_axis(self, vlm_mesh):
        tree = ClientPlaceTree(vlm_mesh)
        assert tree.num_consumers("DP") == 2
        assert tree.num_consumers("CP") == 4
        assert tree.num_consumers("TP") == 8
        assert tree.num_consumers("PP") == 2
        assert tree.num_consumers("WORLD") == 16

    def test_unknown_axis(self, vlm_mesh):
        tree = ClientPlaceTree(vlm_mesh)
        with pytest.raises(OrchestrationError):
            tree.num_consumers("EP")

    def test_consumer_groups_partition_ranks(self, vlm_mesh):
        tree = ClientPlaceTree(vlm_mesh)
        for axis in ("DP", "CP", "TP", "PP", "WORLD"):
            groups = tree.consumer_groups(axis)
            flattened = sorted(rank for group in groups for rank in group)
            assert flattened == list(range(vlm_mesh.world_size))

    def test_from_device_mesh_constructor(self, vlm_mesh):
        tree = ClientPlaceTree.from_device_mesh(vlm_mesh)
        assert tree.mesh is vlm_mesh


class TestBroadcast:
    def test_tp_broadcast_excludes_nonzero_tp(self, vlm_mesh):
        tree = ClientPlaceTree(vlm_mesh)
        tree.mark_broadcast("TP")
        fetchers = tree.fetching_ranks()
        assert all(vlm_mesh.coordinate(rank).tp == 0 for rank in fetchers)
        assert len(fetchers) == vlm_mesh.world_size // 2

    def test_tp_and_cp_broadcast_compose(self, vlm_mesh):
        tree = ClientPlaceTree(vlm_mesh)
        tree.mark_broadcast("TP")
        tree.mark_broadcast("CP")
        fetchers = tree.fetching_ranks()
        assert len(fetchers) == vlm_mesh.world_size // 4
        assert tree.broadcast_axes == {"TP", "CP"}

    def test_invalid_broadcast_axis(self, vlm_mesh):
        tree = ClientPlaceTree(vlm_mesh)
        with pytest.raises(OrchestrationError):
            tree.mark_broadcast("DP")

    def test_no_broadcast_all_ranks_fetch(self, vlm_mesh):
        tree = ClientPlaceTree(vlm_mesh)
        assert len(tree.fetching_ranks()) == vlm_mesh.world_size

    def test_fetching_clients_per_constructor(self, vlm_mesh):
        tree = ClientPlaceTree(vlm_mesh)
        tree.mark_broadcast("TP")
        mapping = tree.fetching_clients_per_constructor("DP")
        assert set(mapping) == {0, 1}
        for bucket_ranks in mapping.values():
            assert all(vlm_mesh.coordinate(rank).tp == 0 for rank in bucket_ranks)


class TestStructure:
    def test_walk_covers_all_levels(self, vlm_mesh):
        tree = ClientPlaceTree(vlm_mesh)
        axes = {node.axis for node in tree.walk()}
        assert axes == {"ROOT", "PP", "DP", "CP", "TP"}

    def test_level_nodes_counts(self, vlm_mesh):
        tree = ClientPlaceTree(vlm_mesh)
        assert len(tree.level_nodes("DP")) == 2 * 2  # PP x DP
        assert len(tree.level_nodes("TP")) == vlm_mesh.world_size  # one leaf per rank

    def test_leaf_ranks_cover_world(self, vlm_mesh):
        tree = ClientPlaceTree(vlm_mesh)
        assert sorted(tree.root.leaf_ranks()) == list(range(vlm_mesh.world_size))

    def test_unknown_level(self, vlm_mesh):
        tree = ClientPlaceTree(vlm_mesh)
        with pytest.raises(OrchestrationError):
            tree.level_nodes("EP")

    def test_describe_and_nodes_spanned(self):
        mesh = DeviceMesh(pp=1, dp=4, cp=1, tp=4, gpus_per_node=8)
        tree = ClientPlaceTree(mesh)
        assert tree.nodes_spanned() == 2
        assert "DP=4" in tree.describe()
