"""Unit tests for the simulated distributed filesystem."""

from __future__ import annotations

import pytest

from repro.errors import FileNotFoundInStorage, StorageError
from repro.storage.filesystem import SimulatedFileSystem


class TestNamespace:
    def test_write_read_roundtrip(self, filesystem):
        filesystem.write("/data/a", {"x": 1}, size_bytes=100)
        assert filesystem.read("/data/a") == {"x": 1}

    def test_path_normalization(self, filesystem):
        filesystem.write("data//b/", "payload", size_bytes=10)
        assert filesystem.exists("/data/b")
        assert filesystem.read("/data/b") == "payload"

    def test_missing_file_raises(self, filesystem):
        with pytest.raises(FileNotFoundInStorage):
            filesystem.read("/missing")

    def test_stat_reports_size_and_replicas(self, filesystem):
        stat = filesystem.write("/data/c", b"xx", size_bytes=2, kind="blob")
        assert stat.size_bytes == 2
        assert len(stat.replicas) == filesystem.replication
        assert stat.kind == "blob"

    def test_delete(self, filesystem):
        filesystem.write("/data/d", 1, size_bytes=1)
        filesystem.delete("/data/d")
        assert not filesystem.exists("/data/d")

    def test_delete_missing_raises(self, filesystem):
        with pytest.raises(FileNotFoundInStorage):
            filesystem.delete("/nope")

    def test_listdir_prefix(self, filesystem):
        filesystem.write("/data/x/1", 1, size_bytes=1)
        filesystem.write("/data/x/2", 2, size_bytes=1)
        filesystem.write("/data/y/1", 3, size_bytes=1)
        assert filesystem.listdir("/data/x") == ["/data/x/1", "/data/x/2"]

    def test_overwrite_replaces_payload(self, filesystem):
        filesystem.write("/data/z", 1, size_bytes=1)
        filesystem.write("/data/z", 2, size_bytes=1)
        assert filesystem.read("/data/z") == 2


class TestConfiguration:
    def test_requires_storage_nodes(self):
        with pytest.raises(StorageError):
            SimulatedFileSystem(storage_nodes=())

    def test_replication_capped_to_node_count(self):
        fs = SimulatedFileSystem(storage_nodes=("a", "b"), replication=5)
        stat = fs.write("/f", 1, size_bytes=1)
        assert len(stat.replicas) == 2

    def test_invalid_replication_rejected(self):
        with pytest.raises(StorageError):
            SimulatedFileSystem(replication=0)

    def test_replica_placement_rotates(self):
        fs = SimulatedFileSystem(storage_nodes=("a", "b", "c"), replication=1)
        first = fs.write("/1", 1, size_bytes=1).replicas
        second = fs.write("/2", 1, size_bytes=1).replicas
        assert first != second


class TestConnections:
    def test_open_close_connection_counts(self, filesystem):
        filesystem.write("/f", 1, size_bytes=1)
        latency = filesystem.open_connection("/f")
        assert latency == pytest.approx(filesystem.connection_latency_s)
        assert filesystem.open_connection_count("/f") == 1
        filesystem.close_connection("/f")
        assert filesystem.open_connection_count("/f") == 0

    def test_close_never_goes_negative(self, filesystem):
        filesystem.write("/f", 1, size_bytes=1)
        filesystem.close_connection("/f")
        assert filesystem.open_connection_count("/f") == 0

    def test_transfer_time_scales_with_bytes(self, filesystem):
        small = filesystem.transfer_time(1_000)
        large = filesystem.transfer_time(1_000_000)
        assert large > small
        assert filesystem.transfer_time(0) == 0.0
