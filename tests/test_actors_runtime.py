"""Unit tests for the actor runtime: nodes, GCS, scheduler, actor system."""

from __future__ import annotations

import pytest

from repro.actors.actor import Actor, ActorState
from repro.actors.gcs import GlobalControlStore
from repro.actors.node import Node, NodeKind, ResourceSpec
from repro.actors.runtime import ActorSystem, ClusterSpec
from repro.actors.scheduler import PlacementRequest, PlacementScheduler
from repro.errors import ActorDead, ActorError, ActorTimeout, SchedulingError
from repro.utils.units import GIB


class Counter(Actor):
    """Trivial actor used throughout the runtime tests."""

    role = "counter"

    def __init__(self, start: int = 0) -> None:
        super().__init__()
        self.value = start

    def increment(self, amount: int = 1) -> int:
        self.value += amount
        return self.value

    def allocate(self, n_bytes: int) -> None:
        self.ledger.charge("buffer", n_bytes)

    def state_dict(self) -> dict:
        return {"value": self.value}

    def load_state_dict(self, state: dict) -> None:
        self.value = state["value"]


class TestNode:
    def make_node(self):
        return Node("n0", NodeKind.ACCELERATOR, ResourceSpec(cpu_cores=8, memory_bytes=GIB))

    def test_reserve_and_release(self):
        node = self.make_node()
        node.reserve("a", 4, GIB // 2)
        assert node.available_cpu == 4
        node.release("a", 4, GIB // 2)
        assert node.available_cpu == 8

    def test_over_reservation_rejected(self):
        node = self.make_node()
        with pytest.raises(SchedulingError):
            node.reserve("a", 16, 0)

    def test_release_unknown_actor_is_noop(self):
        node = self.make_node()
        node.release("ghost", 4, 100)
        assert node.available_cpu == 8

    def test_utilization(self):
        node = self.make_node()
        node.reserve("a", 4, GIB // 2)
        util = node.utilization()
        assert util["cpu"] == pytest.approx(0.5)
        assert util["memory"] == pytest.approx(0.5)

    def test_negative_resources_rejected(self):
        with pytest.raises(SchedulingError):
            ResourceSpec(cpu_cores=-1, memory_bytes=10)


class TestGcs:
    def test_put_get_versioned(self):
        gcs = GlobalControlStore()
        assert gcs.put("k", {"a": 1}) == 1
        assert gcs.put("k", {"a": 2}) == 2
        assert gcs.get("k") == {"a": 2}
        assert gcs.version("k") == 2

    def test_get_returns_deep_copy(self):
        gcs = GlobalControlStore()
        gcs.put("k", {"a": [1]})
        value = gcs.get("k")
        value["a"].append(2)
        assert gcs.get("k") == {"a": [1]}

    def test_missing_key_default(self):
        assert GlobalControlStore().get("missing", 42) == 42

    def test_keys_prefix(self):
        gcs = GlobalControlStore()
        gcs.put("plan/1", 1)
        gcs.put("plan/2", 2)
        gcs.put("other", 3)
        assert gcs.keys("plan/") == ["plan/1", "plan/2"]

    def test_actor_registry_and_roles(self):
        gcs = GlobalControlStore()
        gcs.register_actor("a", {"role": "loader"})
        gcs.register_actor("b", {"role": "planner"})
        assert gcs.list_actors("loader") == ["a"]
        gcs.deregister_actor("a")
        assert gcs.list_actors() == ["b"]

    def test_immutable_payload_stored_and_served_by_reference(self):
        gcs = GlobalControlStore()
        value = ("a", ("b", 1), frozenset({2}))
        gcs.put("k", value)
        assert gcs.get("k") is value

    def test_declared_immutable_skips_copies(self):
        gcs = GlobalControlStore()
        value = {"demands": (1, 2, 3)}
        gcs.put("k", value, immutable=True)
        stored = gcs.get("k")
        assert stored == value
        assert gcs.get("k") is stored  # served by reference, no per-read copy
        with pytest.raises(TypeError):
            stored["demands"] = ()  # readers cannot mutate versioned state
        value["extra"] = 1  # nor can the putter, after the fact
        assert "extra" not in gcs.get("k")

    def test_mutable_payload_isolated_from_caller_mutation(self):
        gcs = GlobalControlStore()
        value = {"a": [1]}
        gcs.put("k", value)
        value["a"].append(2)
        assert gcs.get("k") == {"a": [1]}

    def test_stale_actor_detection(self):
        gcs = GlobalControlStore()
        gcs.register_actor("a", {"role": "loader"})
        gcs.register_actor("b", {"role": "loader"})
        gcs.heartbeat("a", timestamp=100.0)
        assert gcs.stale_actors(now=130.0, timeout_s=10.0) == ["a", "b"]
        gcs.heartbeat("a", timestamp=125.0)
        assert gcs.stale_actors(now=130.0, timeout_s=10.0) == ["b"]


class TestScheduler:
    def make_scheduler(self):
        nodes = [
            Node("accel-0", NodeKind.ACCELERATOR, ResourceSpec(cpu_cores=8, memory_bytes=4 * GIB)),
            Node("cpu-0", NodeKind.CPU, ResourceSpec(cpu_cores=16, memory_bytes=8 * GIB)),
        ]
        return PlacementScheduler(nodes)

    def test_prefers_requested_kind(self):
        scheduler = self.make_scheduler()
        decision = scheduler.place(PlacementRequest("a", 2, GIB, prefer=NodeKind.ACCELERATOR))
        assert decision.node_name == "accel-0"
        assert not decision.spilled

    def test_spills_when_preferred_full(self):
        scheduler = self.make_scheduler()
        scheduler.place(PlacementRequest("a", 8, GIB, prefer=NodeKind.ACCELERATOR))
        decision = scheduler.place(PlacementRequest("b", 2, GIB, prefer=NodeKind.ACCELERATOR))
        assert decision.node_name == "cpu-0"
        assert decision.spilled

    def test_no_spill_when_disallowed(self):
        scheduler = self.make_scheduler()
        scheduler.place(PlacementRequest("a", 8, GIB, prefer=NodeKind.ACCELERATOR))
        with pytest.raises(SchedulingError):
            scheduler.place(
                PlacementRequest("b", 2, GIB, prefer=NodeKind.ACCELERATOR, allow_spill=False)
            )

    def test_node_affinity(self):
        scheduler = self.make_scheduler()
        decision = scheduler.place(PlacementRequest("a", 1, GIB, node_affinity="cpu-0"))
        assert decision.node_name == "cpu-0"

    def test_duplicate_node_rejected(self):
        scheduler = self.make_scheduler()
        with pytest.raises(SchedulingError):
            scheduler.add_node(Node("cpu-0", NodeKind.CPU, ResourceSpec(1, 1)))

    def test_needs_at_least_one_node(self):
        with pytest.raises(SchedulingError):
            PlacementScheduler([])


class TestActorSystem:
    def make_system(self):
        return ActorSystem(ClusterSpec(accelerator_nodes=1, cpu_pods=1))

    def test_create_and_call(self):
        system = self.make_system()
        handle = system.create_actor(lambda: Counter(10))
        assert handle.call("increment", 5) == 15
        assert handle.increment() == 16  # attribute-style call
        assert handle.state is ActorState.RUNNING

    def test_duplicate_name_rejected(self):
        system = self.make_system()
        system.create_actor(Counter, name="c")
        with pytest.raises(ActorError):
            system.create_actor(Counter, name="c")

    def test_unknown_method(self):
        system = self.make_system()
        handle = system.create_actor(Counter)
        with pytest.raises(ActorError):
            handle.call("explode")

    def test_kill_and_restart_with_state(self):
        system = self.make_system()
        handle = system.create_actor(lambda: Counter(0), name="c")
        handle.increment(7)
        state = handle.instance().state_dict()
        system.kill_actor("c")
        with pytest.raises(ActorDead):
            handle.increment()
        restarted = system.restart_actor("c", state=state)
        assert restarted.call("increment") == 8
        assert system.restart_count("c") == 1

    def test_failure_injection_timeout(self):
        system = self.make_system()
        handle = system.create_actor(Counter, name="c")
        system.failures.timeout("c")
        with pytest.raises(ActorTimeout):
            handle.increment()
        system.failures.clear("c")
        assert handle.increment() == 1

    def test_failure_injection_death(self):
        system = self.make_system()
        handle = system.create_actor(Counter, name="c")
        system.failures.fail("c")
        with pytest.raises(ActorDead):
            handle.increment()
        assert handle.state is ActorState.FAILED

    def test_memory_by_node_tracks_actor_ledger(self):
        system = self.make_system()
        handle = system.create_actor(Counter, name="c")
        handle.allocate(1000)
        node = system.actor_node("c")
        assert system.memory_by_node()[node] == 1000
        assert system.total_memory() == 1000

    def test_stop_actor_releases_resources_and_memory(self):
        system = self.make_system()
        handle = system.create_actor(Counter, name="c", cpu_cores=2.0, memory_bytes=GIB)
        handle.allocate(500)
        node_name = system.actor_node("c")
        system.stop_actor("c")
        assert system.memory_by_node()[node_name] == 0
        assert system.node(node_name).available_cpu == system.node(node_name).resources.cpu_cores

    def test_kill_releases_actor_memory(self):
        system = self.make_system()
        handle = system.create_actor(Counter, name="c")
        handle.allocate(2048)
        system.kill_actor("c")
        assert system.total_memory() == 0

    def test_handles_filtered_by_role(self):
        system = self.make_system()
        system.create_actor(Counter, name="a")
        system.create_actor(Counter, name="b")
        assert {h.name for h in system.handles("counter")} == {"a", "b"}
        assert system.handles("planner") == []

    def test_call_log_and_clock(self):
        system = self.make_system()
        handle = system.create_actor(Counter, name="c")
        before = system.clock_s
        handle.increment()
        assert system.clock_s > before
        assert any(record.method == "increment" for record in system.call_log())

    def test_clock_cannot_go_backwards(self):
        system = self.make_system()
        with pytest.raises(ActorError):
            system.advance_clock(-1.0)

    def test_unknown_actor(self):
        system = self.make_system()
        with pytest.raises(ActorError):
            system.actor_state("ghost")


class TestCooperativeEventLoop:
    def make_system(self):
        return ActorSystem(ClusterSpec(accelerator_nodes=1, cpu_pods=1))

    def test_submit_defers_until_tick(self):
        system = self.make_system()
        handle = system.create_actor(Counter, name="c")
        future = handle.submit("increment", 5)
        assert not future.done()
        assert handle.instance().value == 0  # nothing executed yet
        assert system.tick() == 1
        assert future.done()
        assert future.result() == 5
        assert handle.instance().value == 5

    def test_pending_result_raises_until_completed(self):
        system = self.make_system()
        handle = system.create_actor(Counter, name="c")
        future = handle.submit("increment")
        with pytest.raises(ActorError):
            future.result()
        system.tick()
        assert future.result() == 1

    def test_fifo_completion_order_is_deterministic(self):
        system = self.make_system()
        handle = system.create_actor(Counter, name="c")
        futures = [handle.submit("increment", 1) for _ in range(4)]
        system.drain()
        # FIFO execution: results are the running counter values in order.
        assert [future.result() for future in futures] == [1, 2, 3, 4]
        assert system.pending_count() == 0

    def test_tick_respects_budget(self):
        system = self.make_system()
        handle = system.create_actor(Counter, name="c")
        for _ in range(3):
            handle.submit("increment")
        assert system.tick(max_calls=2) == 2
        assert system.pending_count() == 1
        assert system.tick(max_calls=5) == 1

    def test_failure_injected_after_submit_fails_the_future(self):
        system = self.make_system()
        handle = system.create_actor(Counter, name="c")
        future = handle.submit("increment")
        system.failures.fail("c")
        system.tick()
        assert isinstance(future.exception(), ActorDead)
        with pytest.raises(ActorDead):
            future.result()

    def test_cancelled_call_never_executes(self):
        system = self.make_system()
        handle = system.create_actor(Counter, name="c")
        future = handle.submit("increment")
        assert future.cancel()
        assert system.drain() == 0
        assert handle.instance().value == 0
        assert not future.cancel()  # already cancelled

    def test_cancel_pending_by_actor(self):
        system = self.make_system()
        a = system.create_actor(Counter, name="a")
        b = system.create_actor(Counter, name="b")
        fa = a.submit("increment")
        fb = b.submit("increment")
        assert system.cancel_pending("a") == 1
        system.drain()
        assert fa.cancelled()
        assert fb.result() == 1

    def test_submit_to_unknown_actor_rejected(self):
        system = self.make_system()
        with pytest.raises(ActorError):
            system.submit_call("ghost", "increment", (), {})


class TestVirtualClockEngine:
    def make_system(self):
        return ActorSystem(ClusterSpec(accelerator_nodes=1, cpu_pods=1))

    def test_durations_serialize_on_one_actor(self):
        system = self.make_system()
        handle = system.create_actor(Counter, name="c")
        first = handle.submit_timed("increment", duration_s=1.0)
        second = handle.submit_timed("increment", duration_s=2.0)
        system.drain()
        rpc = system.rpc_latency_s
        assert first.available_at_s == pytest.approx(1.0 + rpc)
        # The second call waits for the actor's busy window to end.
        assert second.available_at_s == pytest.approx(1.0 + 2.0 + 2 * rpc)
        assert system.actor_free_at_s("c") == pytest.approx(second.available_at_s)

    def test_independent_actors_overlap_in_virtual_time(self):
        system = self.make_system()
        a = system.create_actor(Counter, name="a")
        b = system.create_actor(Counter, name="b")
        fa = a.submit_timed("increment", duration_s=1.0)
        fb = b.submit_timed("increment", duration_s=1.0)
        system.drain()
        rpc = system.rpc_latency_s
        # Both ran in parallel: neither completion waited on the other.
        assert fa.available_at_s == pytest.approx(1.0 + rpc)
        assert fb.available_at_s == pytest.approx(1.0 + rpc)

    def test_earliest_start_defers_execution(self):
        system = self.make_system()
        handle = system.create_actor(Counter, name="c")
        future = handle.submit_timed("increment", duration_s=0.5, earliest_start_s=10.0)
        system.drain()
        assert future.available_at_s == pytest.approx(10.5 + system.rpc_latency_s)
        assert system.clock_s >= 10.0

    def test_events_execute_in_virtual_time_order(self):
        system = self.make_system()
        a = system.create_actor(Counter, name="a")
        b = system.create_actor(Counter, name="b")
        late = a.submit_timed("increment", 10, earliest_start_s=5.0)
        early = b.submit_timed("increment", 1, earliest_start_s=1.0)
        assert system.tick() == 1
        assert early.done() and not late.done()
        system.drain()
        assert late.done()

    def test_concurrency_lanes_overlap_busy_windows(self):
        system = self.make_system()
        serial = system.create_actor(Counter, name="serial")
        pooled = system.create_actor(Counter, name="pooled", concurrency=2)
        serial_futures = [serial.submit_timed("increment", duration_s=1.0) for _ in range(2)]
        pooled_futures = [pooled.submit_timed("increment", duration_s=1.0) for _ in range(2)]
        system.drain()
        rpc = system.rpc_latency_s
        assert serial_futures[1].available_at_s == pytest.approx(2.0 + 2 * rpc)
        # Two lanes: both pooled calls finish after ~one duration.
        assert pooled_futures[1].available_at_s == pytest.approx(1.0 + rpc)
        # State mutations still applied in strict FIFO order.
        assert [f.result() for f in pooled_futures] == [1, 2]

    def test_invalid_concurrency_rejected(self):
        system = self.make_system()
        with pytest.raises(ActorError):
            system.create_actor(Counter, name="c", concurrency=0)

    def test_timeline_records_events_with_step_tags(self):
        system = self.make_system()
        handle = system.create_actor(Counter, name="c")
        handle.submit_timed("increment", duration_s=0.25, step_tag=7)
        system.drain()
        events = system.timeline.events(component="c", name="increment")
        assert len(events) == 1
        assert events[0].metadata["step"] == 7
        assert events[0].metadata["role"] == "counter"
        assert events[0].duration == pytest.approx(0.25 + system.rpc_latency_s)

    def test_latency_provider_derives_durations(self):
        class DoubleProvider:
            def call_duration_s(self, actor, method, result):
                return float(result) * 0.1

        system = self.make_system()
        system.latency_provider = DoubleProvider()
        handle = system.create_actor(Counter, name="c")
        future = handle.submit("increment", 5)
        system.drain()
        # increment returned 5 -> duration 0.5s via the provider.
        assert future.available_at_s == pytest.approx(0.5 + system.rpc_latency_s)

    def test_explicit_duration_overrides_provider(self):
        class LoudProvider:
            def call_duration_s(self, actor, method, result):  # pragma: no cover
                raise AssertionError("provider must not be consulted")

        system = self.make_system()
        system.latency_provider = LoudProvider()
        handle = system.create_actor(Counter, name="c")
        future = handle.submit_timed("increment", duration_s=0.125)
        system.drain()
        assert future.available_at_s == pytest.approx(0.125 + system.rpc_latency_s)

    def test_failed_call_leaves_lane_free(self):
        system = self.make_system()
        handle = system.create_actor(Counter, name="c")
        future = handle.submit_timed("increment", duration_s=5.0)
        system.failures.fail("c")
        system.drain()
        assert future.exception() is not None
        assert system.actor_free_at_s("c") == 0.0
