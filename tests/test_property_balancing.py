"""Property-based tests for the balancing strategies."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.balancing import (
    WeightedItem,
    balance_items,
    greedy_binpack,
    interleaved_balance,
    karmarkar_karp,
)

costs_strategy = st.lists(st.floats(min_value=0.01, max_value=1e6), min_size=1, max_size=80)
bins_strategy = st.integers(min_value=1, max_value=12)


def make_items(costs):
    return [WeightedItem(key=index, cost=cost) for index, cost in enumerate(costs)]


@given(costs=costs_strategy, num_bins=bins_strategy)
@settings(max_examples=60, deadline=None)
def test_greedy_preserves_every_item_exactly_once(costs, num_bins):
    result = greedy_binpack(make_items(costs), num_bins)
    keys = sorted(key for bin_keys in result.keys_per_bin() for key in bin_keys)
    assert keys == list(range(len(costs)))


@given(costs=costs_strategy, num_bins=bins_strategy)
@settings(max_examples=60, deadline=None)
def test_greedy_total_cost_conserved(costs, num_bins):
    result = greedy_binpack(make_items(costs), num_bins)
    assert math.isclose(sum(result.bin_costs), sum(costs), rel_tol=1e-9)


@given(costs=costs_strategy, num_bins=bins_strategy)
@settings(max_examples=60, deadline=None)
def test_greedy_makespan_bounds(costs, num_bins):
    """LPT greedy stays within the list-scheduling makespan guarantee.

    The classic 4/3 factor holds versus OPT, which ``max(max, sum/k)`` only
    lower-bounds (5 equal items on 4 bins: OPT = 2, lower bound = 1.25), so
    the safe certified upper bound versus observable quantities is the
    Graham list-scheduling bound ``sum/k + max``.
    """
    result = greedy_binpack(make_items(costs), num_bins)
    lower_bound = max(max(costs), sum(costs) / num_bins)
    assert result.max_cost >= lower_bound * (1.0 - 1e-9)
    upper_bound = sum(costs) / num_bins + max(costs)
    assert result.max_cost <= upper_bound * (1.0 + 1e-9) + 1e-6


@given(costs=costs_strategy, num_bins=bins_strategy)
@settings(max_examples=40, deadline=None)
def test_karmarkar_karp_preserves_items_and_cost(costs, num_bins):
    result = karmarkar_karp(make_items(costs), num_bins)
    keys = sorted(key for bin_keys in result.keys_per_bin() for key in bin_keys)
    assert keys == list(range(len(costs)))
    assert math.isclose(sum(result.bin_costs), sum(costs), rel_tol=1e-9)
    assert len(result.bins) == num_bins


@given(costs=costs_strategy, num_bins=bins_strategy)
@settings(max_examples=40, deadline=None)
def test_interleave_preserves_items(costs, num_bins):
    result = interleaved_balance(make_items(costs), num_bins)
    keys = sorted(key for bin_keys in result.keys_per_bin() for key in bin_keys)
    assert keys == list(range(len(costs)))


@given(
    costs=st.lists(st.floats(min_value=1.0, max_value=1000.0), min_size=8, max_size=64),
    num_bins=st.integers(min_value=2, max_value=8),
    method=st.sampled_from(["greedy", "karmarkar-karp"]),
)
@settings(max_examples=40, deadline=None)
def test_cost_aware_methods_within_approximation_of_arrival_order(costs, num_bins, method):
    """Greedy / KK stay within the LPT approximation factor of *any* split,
    including the contiguous arrival-order one a baseline loader would use."""
    items = make_items(costs)
    balanced = balance_items(items, num_bins, method)
    chunk = math.ceil(len(costs) / num_bins)
    arrival_max = max(
        sum(costs[i : i + chunk]) for i in range(0, len(costs), chunk)
    )
    assert balanced.max_cost <= (4.0 / 3.0) * arrival_max + 1e-6


@given(
    costs=st.lists(st.floats(min_value=1.0, max_value=1000.0), min_size=4, max_size=64),
    num_bins=st.integers(min_value=2, max_value=8),
)
@settings(max_examples=40, deadline=None)
def test_interleave_within_two_of_lower_bound(costs, num_bins):
    """The zig-zag deal is cheap, not optimal, but stays within 2x of the lower bound."""
    balanced = balance_items(make_items(costs), num_bins, "interleave")
    lower_bound = max(max(costs), sum(costs) / num_bins)
    assert balanced.max_cost <= 2.0 * lower_bound + 1e-6


@given(costs=costs_strategy)
@settings(max_examples=30, deadline=None)
def test_single_bin_gets_everything(costs):
    for method in ("greedy", "karmarkar-karp", "interleave"):
        result = balance_items(make_items(costs), 1, method)
        assert math.isclose(result.bin_costs[0], sum(costs), rel_tol=1e-9)
