"""Unit tests for the Fig. 2 token length distributions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.distributions import (
    COYO_IMAGE,
    COYO_TEXT,
    LENGTH_BUCKETS,
    NAVIT_IMAGE,
    NAVIT_TEXT,
    BucketedLengthDistribution,
    distribution_for,
    skewness_ratio,
)
from repro.utils.rng import derive_rng


class TestConstruction:
    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError):
            BucketedLengthDistribution("bad", tuple([0.5] * len(LENGTH_BUCKETS)))

    def test_wrong_bucket_count_rejected(self):
        with pytest.raises(ValueError):
            BucketedLengthDistribution("bad", (0.5, 0.5))

    @pytest.mark.parametrize("dist", [COYO_TEXT, COYO_IMAGE, NAVIT_TEXT, NAVIT_IMAGE])
    def test_published_distributions_are_normalized(self, dist):
        assert sum(dist.bucket_probs) == pytest.approx(1.0, abs=1e-6)


class TestSampling:
    def test_lengths_within_bucket_range(self):
        rng = derive_rng(0, "t")
        lengths = COYO_TEXT.sample_lengths(5000, rng)
        assert lengths.min() >= 1
        assert lengths.max() <= LENGTH_BUCKETS[-1]

    def test_sampling_is_deterministic_per_seed(self):
        a = COYO_TEXT.sample_lengths(100, derive_rng(3, "x"))
        b = COYO_TEXT.sample_lengths(100, derive_rng(3, "x"))
        assert np.array_equal(a, b)

    def test_coyo_text_is_mostly_short(self):
        lengths = COYO_TEXT.sample_lengths(20000, derive_rng(0, "coyo"))
        assert (lengths <= 64).mean() > 0.85

    def test_navit_text_has_long_tail(self):
        lengths = NAVIT_TEXT.sample_lengths(20000, derive_rng(0, "navit"))
        assert (lengths > 1024).mean() > 0.3

    def test_image_distributions_are_heavier_than_text(self):
        text = COYO_TEXT.sample_lengths(5000, derive_rng(0, "a")).mean()
        image = COYO_IMAGE.sample_lengths(5000, derive_rng(0, "b")).mean()
        assert image > 10 * text

    def test_histogram_matches_published_marginals(self):
        lengths = NAVIT_IMAGE.sample_lengths(50000, derive_rng(0, "h"))
        hist = NAVIT_IMAGE.bucket_histogram(lengths)
        assert np.abs(hist - np.array(NAVIT_IMAGE.bucket_probs)).max() < 0.02

    def test_token_share_histogram_sums_to_one(self):
        lengths = COYO_TEXT.sample_lengths(5000, derive_rng(0, "s"))
        shares = COYO_TEXT.token_share_histogram(lengths)
        assert shares.sum() == pytest.approx(1.0)

    def test_long_tail_dominates_tokens_for_coyo(self):
        """The paper: 1.62% of long samples account for 9.3% of tokens."""
        lengths = COYO_TEXT.sample_lengths(50000, derive_rng(0, "skew"))
        assert skewness_ratio(lengths) > 3.0


class TestLookup:
    def test_known_combinations(self):
        assert distribution_for("coyo700m", "text") is COYO_TEXT
        assert distribution_for("navit_data", "image") is NAVIT_IMAGE

    def test_unknown_combination(self):
        with pytest.raises(KeyError):
            distribution_for("laion", "text")

    def test_skewness_of_empty_series(self):
        assert skewness_ratio(np.array([])) == 0.0

    def test_skewness_of_uniform_short_series(self):
        assert skewness_ratio(np.full(100, 10)) == 0.0
