"""Unit tests for microbatch transformations: batching, packing, padding, RoPE."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TransformError
from repro.transforms.microbatch import (
    Microbatch,
    PackingCollator,
    PaddingCollator,
    apply_rope_positions,
    batch_samples,
    collate_with_positions,
)


class TestBatchSamples:
    def test_contiguous_split(self, sample_factory):
        samples = [sample_factory(i, text_tokens=10) for i in range(10)]
        microbatches = batch_samples(samples, 4)
        assert len(microbatches) == 4
        assert sum(len(mb) for mb in microbatches) == 10
        assert [s.sample_id for s in microbatches[0].samples] == [0, 1, 2]

    def test_invalid_count(self, sample_factory):
        with pytest.raises(TransformError):
            batch_samples([sample_factory(0)], 0)

    def test_token_totals(self, sample_factory):
        mb = Microbatch(index=0, samples=[sample_factory(0, 10, 20), sample_factory(1, 5, 0)])
        assert mb.total_tokens() == 35
        assert mb.text_tokens() == 15
        assert mb.image_tokens() == 20


class TestPackingCollator:
    def test_packs_small_samples_into_one_sequence(self, sample_factory):
        mb = Microbatch(index=0, samples=[sample_factory(i, text_tokens=100) for i in range(4)])
        collated = PackingCollator(max_sequence_length=512).collate(mb)
        assert len(collated.sequences) == 1
        assert collated.sequences[0].tokens == 400
        assert collated.padding_tokens() == 0

    def test_opens_new_bin_when_full(self, sample_factory):
        mb = Microbatch(index=0, samples=[sample_factory(i, text_tokens=200) for i in range(3)])
        collated = PackingCollator(max_sequence_length=512).collate(mb)
        assert len(collated.sequences) == 2

    def test_oversized_sample_truncated_when_allowed(self, sample_factory):
        mb = Microbatch(index=0, samples=[sample_factory(0, text_tokens=1000)])
        collated = PackingCollator(max_sequence_length=512).collate(mb)
        assert collated.sequences[0].tokens == 512

    def test_oversized_sample_rejected_when_strict(self, sample_factory):
        mb = Microbatch(index=0, samples=[sample_factory(0, text_tokens=1000)])
        with pytest.raises(TransformError):
            PackingCollator(max_sequence_length=512, allow_overflow=False).collate(mb)

    def test_strict_mode_keeps_packing_and_zero_padding(self, sample_factory):
        # Regression for the removed per-sequence padding reset: strict mode
        # must still pack fitting samples normally, with padding untouched (0)
        # and token totals exact.
        mb = Microbatch(
            index=0,
            samples=[sample_factory(i, text_tokens=tokens) for i, tokens in enumerate([300, 200, 400])],
        )
        collated = PackingCollator(max_sequence_length=512, allow_overflow=False).collate(mb)
        assert [seq.padding for seq in collated.sequences] == [0] * len(collated.sequences)
        assert collated.total_tokens() == 900
        assert collated.padding_tokens() == 0
        assert sorted(seg for seq in collated.sequences for seg in seq.segments) == [
            (0, 300),
            (1, 200),
            (2, 400),
        ]

    def test_invalid_sequence_length(self):
        with pytest.raises(TransformError):
            PackingCollator(max_sequence_length=0)

    def test_segments_record_sample_ids(self, sample_factory):
        mb = Microbatch(index=0, samples=[sample_factory(7, text_tokens=10)])
        collated = PackingCollator(128).collate(mb)
        assert collated.sequences[0].segments == [(7, 10)]


class TestPaddingCollator:
    def test_pads_to_longest(self, sample_factory):
        mb = Microbatch(
            index=0, samples=[sample_factory(0, text_tokens=10), sample_factory(1, text_tokens=30)]
        )
        collated = PaddingCollator().collate(mb)
        assert all(seq.tokens == 30 for seq in collated.sequences)
        assert collated.padding_tokens() == 20
        assert 0 < collated.padding_fraction() < 1

    def test_respects_max_length(self, sample_factory):
        mb = Microbatch(index=0, samples=[sample_factory(0, text_tokens=100)])
        collated = PaddingCollator(max_sequence_length=64).collate(mb)
        assert collated.sequences[0].tokens == 64

    def test_empty_microbatch(self):
        collated = PaddingCollator().collate(Microbatch(index=0))
        assert collated.sequences == []
        assert collated.padding_fraction() == 0.0

    def test_padding_wastes_more_than_packing(self, sample_factory):
        samples = [sample_factory(i, text_tokens=16 * (i + 1)) for i in range(8)]
        mb = Microbatch(index=0, samples=samples)
        packed = PackingCollator(512).collate(mb)
        padded = PaddingCollator().collate(mb)
        assert padded.total_tokens() > packed.total_tokens()


class TestRope:
    def test_positions_restart_per_segment(self, sample_factory):
        mb = Microbatch(
            index=0, samples=[sample_factory(0, text_tokens=3), sample_factory(1, text_tokens=2)]
        )
        collated = apply_rope_positions(PackingCollator(16).collate(mb))
        assert collated.position_ids.tolist() == [0, 1, 2, 0, 1]

    def test_padding_positions_are_zero(self, sample_factory):
        mb = Microbatch(
            index=0, samples=[sample_factory(0, text_tokens=2), sample_factory(1, text_tokens=4)]
        )
        collated = apply_rope_positions(PaddingCollator().collate(mb))
        # first sequence: 2 real + 2 padding positions
        assert collated.position_ids[:4].tolist() == [0, 1, 0, 0]

    def test_invalid_theta(self, sample_factory):
        mb = Microbatch(index=0, samples=[sample_factory(0, text_tokens=2)])
        collated = PackingCollator(16).collate(mb)
        with pytest.raises(TransformError):
            apply_rope_positions(collated, theta=0)

    def test_collate_with_positions_helper(self, sample_factory):
        mb = Microbatch(index=0, samples=[sample_factory(0, text_tokens=4)])
        collated = collate_with_positions(mb, 16, packing=True)
        assert isinstance(collated.position_ids, np.ndarray)
        assert collated.total_tokens() == 4

    def test_tensor_bytes(self, sample_factory):
        mb = Microbatch(index=0, samples=[sample_factory(0, text_tokens=100)])
        collated = collate_with_positions(mb, 256)
        assert collated.tensor_bytes(bytes_per_token=4) == 400
