"""Unit tests for the FLOPs models (quadratic attention, packing, heatmaps)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.training.flops import (
    attention_flops,
    backbone_sequence_flops,
    encoder_sample_flops,
    flops_imbalance_matrix,
    imbalance_ratio,
    microbatch_flops,
    mlp_flops,
    packed_backbone_flops,
    transformer_layer_flops,
)
from repro.training.models import llama_12b, mixtral_8x7b, vit_1b, vit_2b


class TestPrimitives:
    def test_attention_has_quadratic_component(self):
        short = attention_flops(1000, 1024)
        long = attention_flops(2000, 1024)
        # More than 2x because of the quadratic score term.
        assert long > 2.0 * short

    def test_zero_length_is_zero(self):
        assert attention_flops(0, 1024) == 0.0
        assert mlp_flops(0, 1024, 4.0) == 0.0

    def test_layer_is_attention_plus_mlp(self):
        assert transformer_layer_flops(128, 512, 4.0) == pytest.approx(
            attention_flops(128, 512) + mlp_flops(128, 512, 4.0)
        )

    def test_paper_packing_example(self):
        """A 30+70 packed pair costs ~16% more than two 50-token segments."""
        hidden = 1  # isolate the quadratic term
        unbalanced = 30 * 30 + 70 * 70
        balanced = 2 * 50 * 50
        assert (unbalanced - balanced) / balanced == pytest.approx(0.16)


class TestModelFlops:
    def test_encoder_flops_scale_with_model_size(self):
        assert encoder_sample_flops(1024, vit_2b()) > encoder_sample_flops(1024, vit_1b())

    def test_moe_uses_active_experts_only(self):
        dense_like = backbone_sequence_flops(4096, llama_12b())
        moe = backbone_sequence_flops(4096, mixtral_8x7b())
        # Mixtral 8x7B activates 2 of 8 experts; its cost is well below 8 experts' worth.
        assert moe < 4 * dense_like

    def test_packed_flops_below_single_sequence(self):
        backbone = llama_12b()
        packed = packed_backbone_flops([1024] * 4, backbone)
        fused = backbone_sequence_flops(4096, backbone)
        assert packed < fused

    def test_packed_flops_empty(self):
        assert packed_backbone_flops([], llama_12b()) == 0.0

    def test_microbatch_flops_components(self, sample_factory):
        samples = [sample_factory(i, text_tokens=64, image_tokens=256) for i in range(4)]
        flops = microbatch_flops(samples, vit_1b(), llama_12b())
        assert flops["encoder_flops"] > 0
        assert flops["backbone_flops"] > 0

    def test_microbatch_without_encoder(self, sample_factory):
        samples = [sample_factory(i, text_tokens=64) for i in range(4)]
        flops = microbatch_flops(samples, None, llama_12b())
        assert flops["encoder_flops"] == 0.0


class TestImbalance:
    def test_heatmap_shape_and_ratio(self, sample_factory):
        assignments = [
            [[sample_factory(0, text_tokens=100)], [sample_factory(1, text_tokens=1000)]],
            [[sample_factory(2, text_tokens=500)], [sample_factory(3, text_tokens=500)]],
        ]
        matrix = flops_imbalance_matrix(assignments, None, llama_12b())
        assert matrix.shape == (2, 2)
        assert imbalance_ratio(matrix) > 1.5

    def test_balanced_matrix_ratio_is_one(self, sample_factory):
        assignments = [[[sample_factory(i, text_tokens=100)]] for i in range(4)]
        matrix = flops_imbalance_matrix(assignments, None, llama_12b())
        assert imbalance_ratio(matrix) == pytest.approx(1.0)

    def test_empty_matrix_ratio(self):
        assert imbalance_ratio(np.zeros((2, 2))) == 1.0

    def test_invalid_component(self, sample_factory):
        with pytest.raises(ValueError):
            flops_imbalance_matrix([[[sample_factory(0)]]], None, llama_12b(), which="vocab")
