"""Unit tests for parallelism transformations (DP/CP/TP/PP views)."""

from __future__ import annotations

import pytest

from repro.errors import TransformError
from repro.parallelism.mesh import DeviceMesh
from repro.transforms.microbatch import Microbatch, PackingCollator
from repro.transforms.parallelism import (
    build_rank_slices,
    context_parallel_slices,
    data_parallel_shards,
    pipeline_stage_view,
    tensor_parallel_replicas,
)


@pytest.fixture()
def collated(sample_factory):
    mb = Microbatch(index=0, samples=[sample_factory(i, text_tokens=100) for i in range(4)])
    return PackingCollator(max_sequence_length=512).collate(mb)


class TestDataParallelShards:
    def test_round_robin_split(self, collated):
        shards = data_parallel_shards([collated] * 6, dp_size=3)
        assert [len(s) for s in shards] == [2, 2, 2]

    def test_remainder_dropped(self, collated):
        shards = data_parallel_shards([collated] * 7, dp_size=3)
        assert sum(len(s) for s in shards) == 6

    def test_invalid_dp_size(self, collated):
        with pytest.raises(TransformError):
            data_parallel_shards([collated], 0)


class TestContextParallelSlices:
    def test_slices_cover_all_tokens(self, collated):
        slices = context_parallel_slices(collated, cp_size=4)
        assert sum(s["token_count"] for s in slices) == collated.total_tokens()

    def test_slices_nearly_equal(self, collated):
        slices = context_parallel_slices(collated, cp_size=3)
        counts = [s["token_count"] for s in slices]
        assert max(counts) - min(counts) <= len(collated.sequences)

    def test_single_cp_is_identity(self, collated):
        slices = context_parallel_slices(collated, cp_size=1)
        assert slices[0]["token_count"] == collated.total_tokens()

    def test_invalid_cp_size(self, collated):
        with pytest.raises(TransformError):
            context_parallel_slices(collated, 0)


class TestTensorParallelReplicas:
    def test_broadcast_only_tp0_fetches(self):
        replicas = tensor_parallel_replicas(1000, tp_size=4, broadcast=True)
        assert replicas[0]["token_count"] == 1000
        assert all(r["token_count"] == 0 for r in replicas[1:])
        assert all(r["via_broadcast"] for r in replicas[1:])

    def test_no_broadcast_all_fetch(self):
        replicas = tensor_parallel_replicas(1000, tp_size=4, broadcast=False)
        assert all(r["token_count"] == 1000 for r in replicas)

    def test_invalid_tp_size(self):
        with pytest.raises(TransformError):
            tensor_parallel_replicas(10, 0, True)


class TestPipelineStageView:
    def test_first_stage_needs_payload(self, collated):
        view = pipeline_stage_view(collated, pp_rank=0, pp_size=4)
        assert view["needs_payload"]
        assert view["payload_bytes"] > 0

    def test_middle_stage_metadata_only(self, collated):
        view = pipeline_stage_view(collated, pp_rank=1, pp_size=4)
        assert not view["needs_payload"]
        assert view["payload_bytes"] == 0
        assert view["metadata_bytes"] > 0

    def test_last_stage_needs_labels(self, collated):
        view = pipeline_stage_view(collated, pp_rank=3, pp_size=4)
        assert view["needs_payload"]
        assert view["payload_bytes"] > 0

    def test_invalid_rank(self, collated):
        with pytest.raises(TransformError):
            pipeline_stage_view(collated, pp_rank=4, pp_size=4)


class TestBuildRankSlices:
    def test_covers_every_rank_of_dp_group(self, collated):
        mesh = DeviceMesh(pp=2, dp=2, cp=2, tp=2)
        slices = build_rank_slices(collated, mesh, dp_index=0)
        assert {s.rank for s in slices} == set(mesh.ranks_where(dp=0))

    def test_tp_broadcast_reduces_fetched_bytes(self, collated):
        mesh = DeviceMesh(pp=1, dp=1, cp=1, tp=4)
        with_bcast = build_rank_slices(collated, mesh, dp_index=0, broadcast_tp=True)
        without = build_rank_slices(collated, mesh, dp_index=0, broadcast_tp=False)
        assert sum(s.payload_bytes for s in with_bcast) < sum(s.payload_bytes for s in without)

    def test_cp_ranks_receive_disjoint_shares(self, collated):
        mesh = DeviceMesh(pp=1, dp=1, cp=4, tp=1)
        slices = build_rank_slices(collated, mesh, dp_index=0)
        assert sum(s.token_count for s in slices) == collated.total_tokens()

    def test_later_pp_stages_marked_metadata_only(self, collated):
        mesh = DeviceMesh(pp=4, dp=1, cp=1, tp=1)
        slices = build_rank_slices(collated, mesh, dp_index=0)
        by_rank = {s.rank: s for s in slices}
        middle_ranks = mesh.ranks_where(pp=1) + mesh.ranks_where(pp=2)
        assert all(by_rank[rank].metadata_only for rank in middle_ranks)
