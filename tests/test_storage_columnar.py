"""Unit tests for the columnar (Parquet-like) file format."""

from __future__ import annotations

import pytest

from repro.errors import CorruptFileError, StorageError
from repro.storage.columnar import ColumnSchema, write_columnar_file

SCHEMA = [
    ColumnSchema("sample_id", "int64", 8),
    ColumnSchema("tokens", "int32", 4),
]


def make_records(count: int) -> list[dict]:
    return [{"sample_id": i, "tokens": i * 10} for i in range(count)]


class TestWrite:
    def test_row_groups_partition_rows(self):
        file = write_columnar_file("/f", make_records(10), SCHEMA, rows_per_group=3)
        assert file.total_rows == 10
        assert [g.row_count for g in file.row_groups] == [3, 3, 3, 1]

    def test_rows_per_group_derived_from_bytes(self):
        file = write_columnar_file("/f", make_records(100), SCHEMA, row_group_bytes=120)
        assert len(file.row_groups) == 10

    def test_empty_schema_rejected(self):
        with pytest.raises(StorageError):
            write_columnar_file("/f", make_records(1), [])

    def test_missing_column_rejected(self):
        with pytest.raises(StorageError):
            write_columnar_file("/f", [{"sample_id": 1}], SCHEMA)

    def test_footer_bytes_grow_with_row_groups(self):
        small = write_columnar_file("/f", make_records(10), SCHEMA, rows_per_group=10)
        large = write_columnar_file("/f", make_records(10), SCHEMA, rows_per_group=1)
        assert large.footer_bytes > small.footer_bytes

    def test_total_bytes_includes_footer(self):
        file = write_columnar_file("/f", make_records(5), SCHEMA)
        assert file.total_bytes() > file.footer_bytes


class TestRead:
    def test_read_row_roundtrip(self):
        file = write_columnar_file("/f", make_records(10), SCHEMA, rows_per_group=4)
        assert file.read_row(7) == {"sample_id": 7, "tokens": 70}

    def test_row_group_for_row(self):
        file = write_columnar_file("/f", make_records(10), SCHEMA, rows_per_group=4)
        assert file.row_group_for_row(5).index == 1

    def test_out_of_range_row(self):
        file = write_columnar_file("/f", make_records(3), SCHEMA)
        with pytest.raises(StorageError):
            file.read_row(3)

    def test_column_names(self):
        file = write_columnar_file("/f", make_records(1), SCHEMA)
        assert file.column_names() == ["sample_id", "tokens"]


class TestValidation:
    def test_validate_passes_for_written_file(self):
        write_columnar_file("/f", make_records(20), SCHEMA, rows_per_group=7).validate()

    def test_validate_detects_row_count_mismatch(self):
        file = write_columnar_file("/f", make_records(6), SCHEMA, rows_per_group=3)
        file.row_groups[1].columns["tokens"].pop()
        with pytest.raises(CorruptFileError):
            file.validate()

    def test_validate_detects_gap_in_row_groups(self):
        file = write_columnar_file("/f", make_records(6), SCHEMA, rows_per_group=3)
        file.row_groups[1].row_start = 4
        with pytest.raises(CorruptFileError):
            file.validate()

    def test_missing_column_access_raises(self):
        file = write_columnar_file("/f", make_records(2), SCHEMA)
        with pytest.raises(CorruptFileError):
            file.row_groups[0].column("nope")
