"""Unit tests for data sources, catalogs and cursors."""

from __future__ import annotations

import pytest

from repro.data.samples import Modality
from repro.data.sources import (
    DataSource,
    SourceCatalog,
    SourceCursor,
    estimate_source_weights,
    heterogeneity_index,
)
from repro.data.synthetic import build_source_catalog, navit_like_spec
from repro.errors import ConfigurationError


def make_source(name="s", modality=Modality.TEXT, num_samples=10):
    return DataSource(
        name=name, modality=modality, paths=("/data/x",), num_samples=num_samples
    )


class TestDataSource:
    def test_requires_samples(self):
        with pytest.raises(ConfigurationError):
            make_source(num_samples=0)

    def test_requires_paths(self):
        with pytest.raises(ConfigurationError):
            DataSource(name="s", modality=Modality.TEXT, paths=(), num_samples=1)

    def test_expected_latency_scales_with_cost(self):
        cheap = make_source("cheap")
        expensive = DataSource(
            name="exp",
            modality=Modality.IMAGE,
            paths=("/p",),
            num_samples=1,
            avg_image_tokens=1000,
        )
        assert expensive.expected_transform_latency() > cheap.expected_transform_latency()


class TestSourceCatalog:
    def test_add_and_get(self):
        catalog = SourceCatalog([make_source("a"), make_source("b")])
        assert catalog.get("a").name == "a"
        assert len(catalog) == 2
        assert "a" in catalog

    def test_duplicate_rejected(self):
        catalog = SourceCatalog([make_source("a")])
        with pytest.raises(ConfigurationError):
            catalog.add(make_source("a"))

    def test_unknown_source_rejected(self):
        with pytest.raises(ConfigurationError):
            SourceCatalog().get("nope")

    def test_total_samples(self):
        catalog = SourceCatalog([make_source("a", num_samples=5), make_source("b", num_samples=7)])
        assert catalog.total_samples() == 12

    def test_by_modality(self, small_catalog):
        images = small_catalog.by_modality(Modality.IMAGE)
        assert all(source.modality is Modality.IMAGE for source in images)

    def test_transform_cost_spread_is_large_for_heterogeneous_catalog(self, small_catalog):
        assert small_catalog.transform_cost_spread() > 2.0

    def test_empty_catalog_spread(self):
        assert SourceCatalog().transform_cost_spread() == 1.0


class TestSourceCursor:
    @pytest.fixture()
    def catalog(self, filesystem):
        return build_source_catalog(
            navit_like_spec(num_sources=2, samples_per_source=20, seed=1), filesystem
        )

    def test_sequential_reads_and_wraparound(self, filesystem, catalog):
        source = catalog.sources()[0]
        cursor = SourceCursor(source, filesystem)
        first = cursor.next_metadata()
        for _ in range(source.num_samples - 1):
            cursor.next_metadata()
        wrapped = cursor.next_metadata()
        assert wrapped.sample_id == first.sample_id

    def test_sharding_partitions_rows(self, filesystem, catalog):
        source = catalog.sources()[0]
        shard0 = SourceCursor(source, filesystem, shard_index=0, shard_count=2)
        shard1 = SourceCursor(source, filesystem, shard_index=1, shard_count=2)
        ids0 = {m.sample_id for m in shard0.take(source.num_samples // 2)}
        ids1 = {m.sample_id for m in shard1.take(source.num_samples // 2)}
        assert not ids0 & ids1

    def test_invalid_shard_rejected(self, filesystem, catalog):
        source = catalog.sources()[0]
        with pytest.raises(ConfigurationError):
            SourceCursor(source, filesystem, shard_index=2, shard_count=2)

    def test_state_dict_roundtrip(self, filesystem, catalog):
        source = catalog.sources()[0]
        cursor = SourceCursor(source, filesystem)
        cursor.take(5)
        state = cursor.state_dict()
        other = SourceCursor(source, filesystem)
        other.load_state_dict(state)
        assert other.next_metadata().sample_id == cursor.next_metadata().sample_id

    def test_state_dict_shard_mismatch(self, filesystem, catalog):
        source = catalog.sources()[0]
        cursor = SourceCursor(source, filesystem, shard_index=0, shard_count=2)
        other = SourceCursor(source, filesystem)
        with pytest.raises(ConfigurationError):
            other.load_state_dict(cursor.state_dict())


class TestHelpers:
    def test_estimate_source_weights_proportional(self):
        sources = [make_source("a", num_samples=30), make_source("b", num_samples=10)]
        weights = estimate_source_weights(sources)
        assert weights["a"] == pytest.approx(0.75)
        assert weights["b"] == pytest.approx(0.25)

    def test_heterogeneity_index_zero_for_identical_sources(self):
        sources = [make_source("a"), make_source("b")]
        assert heterogeneity_index(sources) == pytest.approx(0.0)

    def test_heterogeneity_index_positive_for_mixed_catalog(self, small_catalog):
        assert heterogeneity_index(small_catalog.sources()) > 0.0
