"""Property-based tests for core invariants: packing, ledgers, mesh, mixtures, DGraph."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dgraph import DGraph
from repro.core.framework import MegaScaleData, TrainingJobSpec
from repro.core.place_tree import ClientPlaceTree
from repro.data.mixture import MixtureSchedule
from repro.data.samples import Modality, SampleMetadata
from repro.metrics.memory import MemoryLedger
from repro.parallelism.mesh import DeviceMesh
from repro.transforms.microbatch import Microbatch, PackingCollator, apply_rope_positions

# -- strategies -------------------------------------------------------------------

sample_lists = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=8192),  # text tokens
        st.integers(min_value=0, max_value=8192),  # image tokens
    ),
    min_size=1,
    max_size=48,
)

mesh_dims = st.tuples(
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=1, max_value=3),
)


def make_samples(spec):
    return [
        SampleMetadata(
            sample_id=index,
            source=f"src{index % 3}",
            modality=Modality.IMAGE if image else Modality.TEXT,
            text_tokens=text,
            image_tokens=image,
        )
        for index, (text, image) in enumerate(spec)
    ]


# -- packing ---------------------------------------------------------------------


@given(spec=sample_lists, max_len=st.integers(min_value=128, max_value=16384))
@settings(max_examples=60, deadline=None)
def test_packing_never_exceeds_max_length_and_loses_no_sample(spec, max_len):
    samples = make_samples(spec)
    collated = PackingCollator(max_sequence_length=max_len).collate(
        Microbatch(index=0, samples=samples)
    )
    assert all(seq.tokens <= max_len for seq in collated.sequences)
    packed_ids = sorted(sid for seq in collated.sequences for sid, _ in seq.segments)
    assert packed_ids == sorted(s.sample_id for s in samples)


@given(spec=sample_lists, max_len=st.integers(min_value=128, max_value=16384))
@settings(max_examples=40, deadline=None)
def test_rope_positions_length_matches_tokens(spec, max_len):
    samples = make_samples(spec)
    collated = apply_rope_positions(
        PackingCollator(max_sequence_length=max_len).collate(Microbatch(index=0, samples=samples))
    )
    assert len(collated.position_ids) == collated.total_tokens()
    assert (collated.position_ids >= 0).all()


# -- memory ledger ---------------------------------------------------------------


@given(
    operations=st.lists(
        st.tuples(st.sampled_from(["charge", "release"]), st.integers(min_value=0, max_value=10**9)),
        max_size=60,
    )
)
@settings(max_examples=60, deadline=None)
def test_ledger_never_negative_and_peak_monotone(operations):
    ledger = MemoryLedger()
    peak_seen = 0
    for op, amount in operations:
        if op == "charge":
            ledger.charge("cat", amount)
        else:
            ledger.release("cat", amount)
        assert ledger.total_bytes() >= 0
        peak_seen = max(peak_seen, ledger.total_bytes())
    assert ledger.peak_bytes() >= peak_seen


# -- device mesh ------------------------------------------------------------------


@given(dims=mesh_dims)
@settings(max_examples=40, deadline=None)
def test_mesh_consumer_groups_partition_world(dims):
    pp, dp, cp, tp = dims
    mesh = DeviceMesh(pp=pp, dp=dp, cp=cp, tp=tp)
    for axis in ("DP", "CP", "WORLD"):
        groups = mesh.data_consumers(axis)
        ranks = sorted(rank for group in groups for rank in group)
        assert ranks == list(range(mesh.world_size))


@given(dims=mesh_dims)
@settings(max_examples=40, deadline=None)
def test_place_tree_fetching_ranks_one_per_broadcast_group(dims):
    pp, dp, cp, tp = dims
    mesh = DeviceMesh(pp=pp, dp=dp, cp=cp, tp=tp)
    tree = ClientPlaceTree(mesh)
    tree.mark_broadcast("TP")
    fetchers = tree.fetching_ranks()
    assert len(fetchers) == pp * dp * cp
    assert all(mesh.coordinate(rank).tp == 0 for rank in fetchers)


# -- mixtures ----------------------------------------------------------------------


@given(
    weights=st.dictionaries(
        st.sampled_from([f"s{i}" for i in range(6)]),
        st.floats(min_value=0.001, max_value=100.0),
        min_size=1,
        max_size=6,
    ),
    step=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=60, deadline=None)
def test_mixture_weights_always_normalized(weights, step):
    schedule = MixtureSchedule.static(weights)
    at_step = schedule.weights_at(step)
    assert abs(sum(at_step.values()) - 1.0) < 1e-9
    assert all(value >= 0 for value in at_step.values())


# -- dgraph -------------------------------------------------------------------------


@given(spec=sample_lists, dims=mesh_dims, microbatches=st.integers(min_value=1, max_value=6))
@settings(max_examples=40, deadline=None)
def test_dgraph_plan_assigns_every_selected_sample_once(spec, dims, microbatches):
    pp, dp, cp, tp = dims
    samples = make_samples(spec)
    tree = ClientPlaceTree(DeviceMesh(pp=pp, dp=dp, cp=cp, tp=tp))
    dgraph = DGraph.from_buffer_infos(samples).init(tree)
    dgraph.distribute("DP").balance(num_microbatches=microbatches)
    plan = dgraph.plan()
    assigned = sorted(
        sid for assignment in plan.module.assignments for sid in assignment.sample_ids()
    )
    assert assigned == sorted(s.sample_id for s in samples)
    plan.module.validate()


# -- prefetching pipeline ------------------------------------------------------------


def _delivery_bytes(result):
    """Byte-level signature of a step's per-rank deliveries."""
    return {
        rank: [
            (
                piece.rank,
                piece.microbatch_index,
                piece.token_count,
                piece.payload_bytes,
                piece.metadata_only,
                piece.replicated_from,
            )
            for piece in delivery.slices
        ]
        for rank, delivery in sorted(result.deliveries.items())
    }


@given(seed=st.integers(min_value=0, max_value=31), depth=st.integers(min_value=1, max_value=3))
@settings(max_examples=6, deadline=None)
def test_prefetched_batches_byte_identical_to_synchronous(seed, depth):
    """For a fixed seed the async pipeline delivers exactly the sync batches.

    This is the determinism contract of the prefetching data plane: overlap
    changes *when* work happens, never *what* is delivered.
    """

    def deploy(prefetch_depth):
        return MegaScaleData.deploy(
            TrainingJobSpec(
                pp=1, dp=2, cp=1, tp=1, encoder=None, strategy="backbone_balance",
                samples_per_dp_step=4, num_microbatches=2, num_sources=3,
                samples_per_source=48, seed=seed, prefetch_depth=prefetch_depth,
            )
        )

    sync = deploy(0)
    prefetched = deploy(depth)
    try:
        for _ in range(3):
            a = sync.run_step()
            b = prefetched.run_step()
            assert a.step == b.step
            assert a.plan.source_demands == b.plan.source_demands
            assert _delivery_bytes(a) == _delivery_bytes(b)
            # Same samples, same per-rank payload bytes, same ranks.
            assert a.fetched_bytes() == b.fetched_bytes()
    finally:
        sync.shutdown()
        prefetched.shutdown()


# -- columnar planning fast path -----------------------------------------------------


@given(
    seed=st.integers(min_value=0, max_value=15),
    depth=st.sampled_from([0, 2]),
    event_step=st.integers(min_value=1, max_value=4),
    event=st.sampled_from(["none", "flush_mixture", "reshard", "scale_up_down"]),
)
@settings(max_examples=10, deadline=None)
def test_columnar_plans_byte_identical_to_legacy_through_runtime_events(
    seed, depth, event_step, event
):
    """The tentpole contract of the columnar fast path: for any seed and any
    mid-run event (mixture swap with pipeline flush, trainer reshard, loader
    fleet scale-up **and** scale-down), every LoadingPlan — demands, mixture
    weights, fetching ranks, module/subplan assignments — and every delivered
    batch is byte-identical to a ``planning="legacy"`` run."""
    from repro.core.resharding import ReshardNotification

    def mixture():
        from repro.data.mixture import MixturePhase

        return MixtureSchedule.staged(
            [
                MixturePhase(0, {"navit_data/src000": 0.6, "navit_data/src001": 0.25,
                                 "navit_data/src002": 0.15}),
                MixturePhase(3 + (seed % 3), {"navit_data/src000": 0.1,
                                              "navit_data/src001": 0.45,
                                              "navit_data/src002": 0.45}),
            ]
        )

    def deploy(planning):
        return MegaScaleData.deploy(
            TrainingJobSpec(
                pp=1, dp=2, cp=1, tp=1, encoder=None, strategy="backbone_balance",
                samples_per_dp_step=8, num_microbatches=2, num_sources=3,
                samples_per_source=48, seed=seed, prefetch_depth=depth,
                mixture=mixture(), planning=planning,
            )
        )

    def apply_event(system):
        if event == "flush_mixture":
            system.set_mixture(
                MixtureSchedule.static(
                    {"navit_data/src000": 0.2, "navit_data/src001": 0.2,
                     "navit_data/src002": 0.6}
                ),
                flush_pending=True,
            )
        elif event == "reshard":
            system.handle_reshard(
                ReshardNotification(
                    step=event_step, new_mesh=DeviceMesh(pp=1, dp=4, cp=1, tp=1)
                )
            )
        elif event == "scale_up_down":
            system.scale_source("navit_data/src000", 2)

    columnar = deploy("columnar")
    legacy = deploy("legacy")
    try:
        for step in range(7):
            if step == event_step:
                apply_event(columnar)
                apply_event(legacy)
            if event == "scale_up_down" and step == event_step + 2:
                columnar.scale_source("navit_data/src000", 1)
                legacy.scale_source("navit_data/src000", 1)
            a = columnar.run_step()
            b = legacy.run_step()
            assert a.step == b.step == step
            assert a.plan.source_demands == b.plan.source_demands
            assert a.plan.mixture_weights == b.plan.mixture_weights
            assert a.plan.fetching_ranks == b.plan.fetching_ranks
            assert set(a.plan.modules) == set(b.plan.modules)
            for name, module in a.plan.modules.items():
                assert module.assignments == b.plan.modules[name].assignments, (step, name)
            assert _delivery_bytes(a) == _delivery_bytes(b)
        if event == "scale_up_down":
            assert columnar.fleet.spawn_count() >= 1
            assert columnar.fleet.retire_count() >= 1
    finally:
        columnar.shutdown()
        legacy.shutdown()
