"""Property-based tests for core invariants: packing, ledgers, mesh, mixtures, DGraph."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dgraph import DGraph
from repro.core.place_tree import ClientPlaceTree
from repro.data.mixture import MixtureSchedule
from repro.data.samples import Modality, SampleMetadata
from repro.metrics.memory import MemoryLedger
from repro.parallelism.mesh import DeviceMesh
from repro.transforms.microbatch import Microbatch, PackingCollator, apply_rope_positions

# -- strategies -------------------------------------------------------------------

sample_lists = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=8192),  # text tokens
        st.integers(min_value=0, max_value=8192),  # image tokens
    ),
    min_size=1,
    max_size=48,
)

mesh_dims = st.tuples(
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=1, max_value=3),
)


def make_samples(spec):
    return [
        SampleMetadata(
            sample_id=index,
            source=f"src{index % 3}",
            modality=Modality.IMAGE if image else Modality.TEXT,
            text_tokens=text,
            image_tokens=image,
        )
        for index, (text, image) in enumerate(spec)
    ]


# -- packing ---------------------------------------------------------------------


@given(spec=sample_lists, max_len=st.integers(min_value=128, max_value=16384))
@settings(max_examples=60, deadline=None)
def test_packing_never_exceeds_max_length_and_loses_no_sample(spec, max_len):
    samples = make_samples(spec)
    collated = PackingCollator(max_sequence_length=max_len).collate(
        Microbatch(index=0, samples=samples)
    )
    assert all(seq.tokens <= max_len for seq in collated.sequences)
    packed_ids = sorted(sid for seq in collated.sequences for sid, _ in seq.segments)
    assert packed_ids == sorted(s.sample_id for s in samples)


@given(spec=sample_lists, max_len=st.integers(min_value=128, max_value=16384))
@settings(max_examples=40, deadline=None)
def test_rope_positions_length_matches_tokens(spec, max_len):
    samples = make_samples(spec)
    collated = apply_rope_positions(
        PackingCollator(max_sequence_length=max_len).collate(Microbatch(index=0, samples=samples))
    )
    assert len(collated.position_ids) == collated.total_tokens()
    assert (collated.position_ids >= 0).all()


# -- memory ledger ---------------------------------------------------------------


@given(
    operations=st.lists(
        st.tuples(st.sampled_from(["charge", "release"]), st.integers(min_value=0, max_value=10**9)),
        max_size=60,
    )
)
@settings(max_examples=60, deadline=None)
def test_ledger_never_negative_and_peak_monotone(operations):
    ledger = MemoryLedger()
    peak_seen = 0
    for op, amount in operations:
        if op == "charge":
            ledger.charge("cat", amount)
        else:
            ledger.release("cat", amount)
        assert ledger.total_bytes() >= 0
        peak_seen = max(peak_seen, ledger.total_bytes())
    assert ledger.peak_bytes() >= peak_seen


# -- device mesh ------------------------------------------------------------------


@given(dims=mesh_dims)
@settings(max_examples=40, deadline=None)
def test_mesh_consumer_groups_partition_world(dims):
    pp, dp, cp, tp = dims
    mesh = DeviceMesh(pp=pp, dp=dp, cp=cp, tp=tp)
    for axis in ("DP", "CP", "WORLD"):
        groups = mesh.data_consumers(axis)
        ranks = sorted(rank for group in groups for rank in group)
        assert ranks == list(range(mesh.world_size))


@given(dims=mesh_dims)
@settings(max_examples=40, deadline=None)
def test_place_tree_fetching_ranks_one_per_broadcast_group(dims):
    pp, dp, cp, tp = dims
    mesh = DeviceMesh(pp=pp, dp=dp, cp=cp, tp=tp)
    tree = ClientPlaceTree(mesh)
    tree.mark_broadcast("TP")
    fetchers = tree.fetching_ranks()
    assert len(fetchers) == pp * dp * cp
    assert all(mesh.coordinate(rank).tp == 0 for rank in fetchers)


# -- mixtures ----------------------------------------------------------------------


@given(
    weights=st.dictionaries(
        st.sampled_from([f"s{i}" for i in range(6)]),
        st.floats(min_value=0.001, max_value=100.0),
        min_size=1,
        max_size=6,
    ),
    step=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=60, deadline=None)
def test_mixture_weights_always_normalized(weights, step):
    schedule = MixtureSchedule.static(weights)
    at_step = schedule.weights_at(step)
    assert abs(sum(at_step.values()) - 1.0) < 1e-9
    assert all(value >= 0 for value in at_step.values())


# -- dgraph -------------------------------------------------------------------------


@given(spec=sample_lists, dims=mesh_dims, microbatches=st.integers(min_value=1, max_value=6))
@settings(max_examples=40, deadline=None)
def test_dgraph_plan_assigns_every_selected_sample_once(spec, dims, microbatches):
    pp, dp, cp, tp = dims
    samples = make_samples(spec)
    tree = ClientPlaceTree(DeviceMesh(pp=pp, dp=dp, cp=cp, tp=tp))
    dgraph = DGraph.from_buffer_infos(samples).init(tree)
    dgraph.distribute("DP").balance(num_microbatches=microbatches)
    plan = dgraph.plan()
    assigned = sorted(
        sid for assignment in plan.module.assignments for sid in assignment.sample_ids()
    )
    assert assigned == sorted(s.sample_id for s in samples)
    plan.module.validate()
