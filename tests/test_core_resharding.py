"""Unit tests for elastic resharding."""

from __future__ import annotations

import pytest

from repro.core.data_constructor import DataConstructor
from repro.core.place_tree import ClientPlaceTree
from repro.core.resharding import ElasticResharder, ReshardNotification
from repro.parallelism.mesh import DeviceMesh


def make_constructors(mesh, count):
    return {
        f"constructor-{index}": DataConstructor(bucket_index=index, mesh=mesh, dp_index=index)
        for index in range(count)
    }


class TestPlanReshard:
    def test_scale_up_adds_constructors(self, vlm_mesh):
        tree = ClientPlaceTree(vlm_mesh)
        resharder = ElasticResharder(tree)
        new_mesh = DeviceMesh(pp=2, dp=4, cp=2, tp=2)
        report = resharder.plan_reshard(
            ReshardNotification(step=10, new_mesh=new_mesh), make_constructors(vlm_mesh, 2)
        )
        assert report.constructors_required == 4
        assert report.constructors_added == 2
        assert report.constructors_retired == 0
        assert report.new_world_size == 32

    def test_scale_down_retires_constructors(self, vlm_mesh):
        tree = ClientPlaceTree(vlm_mesh)
        resharder = ElasticResharder(tree)
        new_mesh = DeviceMesh(pp=2, dp=1, cp=2, tp=2)
        report = resharder.plan_reshard(
            ReshardNotification(step=1, new_mesh=new_mesh), make_constructors(vlm_mesh, 2)
        )
        assert report.constructors_required == 1
        assert report.constructors_retired == 1

    def test_latency_scales_with_constructor_count(self, vlm_mesh):
        tree = ClientPlaceTree(vlm_mesh)
        resharder = ElasticResharder(tree)
        notification = ReshardNotification(step=0, new_mesh=DeviceMesh(pp=1, dp=8, cp=1, tp=1))
        small = resharder.plan_reshard(notification, make_constructors(vlm_mesh, 2))
        large = resharder.plan_reshard(notification, make_constructors(vlm_mesh, 8))
        assert large.resharding_latency_s >= small.resharding_latency_s


class TestApply:
    def test_apply_updates_constructors_and_tree(self, vlm_mesh):
        tree = ClientPlaceTree(vlm_mesh)
        tree.mark_broadcast("TP")
        resharder = ElasticResharder(tree)
        constructors = make_constructors(vlm_mesh, 2)
        new_mesh = DeviceMesh(pp=1, dp=2, cp=1, tp=2)
        report = resharder.apply(ReshardNotification(step=4, new_mesh=new_mesh), constructors)
        assert resharder.tree.mesh is new_mesh
        assert "TP" in resharder.tree.broadcast_axes
        for name, bucket in report.reassigned_buckets.items():
            assert constructors[name].mesh is new_mesh
            assert constructors[name].dp_index == bucket

    def test_reassignment_is_dense(self, vlm_mesh):
        tree = ClientPlaceTree(vlm_mesh)
        resharder = ElasticResharder(tree)
        constructors = make_constructors(vlm_mesh, 4)
        new_mesh = DeviceMesh(pp=2, dp=2, cp=2, tp=2)
        report = resharder.apply(ReshardNotification(step=0, new_mesh=new_mesh), constructors)
        assert sorted(report.reassigned_buckets.values()) == [0, 1]
