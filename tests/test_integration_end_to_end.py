"""Integration tests: full deploy + multi-step training workflows."""

from __future__ import annotations

import pytest

from repro.core.framework import MegaScaleData, TrainingJobSpec
from repro.data.mixture import MixturePhase, MixtureSchedule


class TestVlmEndToEnd:
    @pytest.fixture(scope="class")
    def system(self):
        job = TrainingJobSpec(
            pp=1, dp=2, cp=2, tp=2, backbone="Llama-12B", encoder="ViT-1B",
            samples_per_dp_step=8, num_microbatches=2, max_sequence_length=8192,
            num_sources=5, samples_per_source=96, strategy="hybrid", seed=3,
        )
        return MegaScaleData.deploy(job)

    def test_multi_step_run_is_stable(self, system):
        results = [system.run_step(simulate=True) for _ in range(3)]
        assert all(r.iteration.iteration_time_s > 0 for r in results)
        assert all(r.deliveries for r in results)

    def test_constructor_memory_released_across_steps(self, system):
        system.run_step()
        system.run_step()
        for handle in system.constructor_handles:
            # Only the most recent step (or two with double buffering) stays staged.
            assert len(handle.instance().staged_steps()) <= 2

    def test_broadcast_excluded_ranks_receive_no_delivery(self, system):
        result = system.run_step()
        world = system.tree.mesh.world_size
        assert len(result.deliveries) == len(result.plan.fetching_ranks)
        assert len(result.deliveries) < world

    def test_plan_demands_are_served_by_loaders(self, system):
        result = system.run_step()
        prepared_total = sum(
            handle.instance().stats.samples_delivered for handle in system.loader_handles
        )
        assert prepared_total >= result.plan.total_samples()

    def test_balanced_assignment_beats_arrival_order(self, system):
        result = system.run_step(simulate=True)
        flat = [s for bucket in result.backbone_assignments for mb in bucket for s in mb]
        dp = system.job.dp
        microbatches = system.job.num_microbatches
        per_bucket = (len(flat) + dp - 1) // dp
        arrival = []
        for b in range(dp):
            chunk = flat[b * per_bucket : (b + 1) * per_bucket]
            per_mb = max(1, (len(chunk) + microbatches - 1) // microbatches)
            arrival.append([chunk[m * per_mb : (m + 1) * per_mb] for m in range(microbatches)])
        naive = system.simulator.simulate_iteration(arrival)
        assert result.iteration.iteration_time_s <= naive.iteration_time_s * 1.05


class TestTextOnlyEndToEnd:
    def test_backbone_balance_pipeline(self):
        job = TrainingJobSpec(
            pp=2, dp=2, cp=1, tp=1, backbone="Mixtral-8x7B", encoder=None,
            dataset_group="coyo700m", samples_per_dp_step=8, num_microbatches=4,
            num_sources=3, samples_per_source=64, strategy="backbone_balance", seed=5,
        )
        system = MegaScaleData.deploy(job)
        summary = system.run_training(num_steps=3)
        assert summary["steps"] == 3
        assert summary["throughput_tokens_per_s"] > 0

    def test_curriculum_mixture_shifts_demand(self):
        job = TrainingJobSpec(
            pp=1, dp=2, cp=1, tp=1, encoder=None, strategy="backbone_balance",
            samples_per_dp_step=16, num_microbatches=2, num_sources=2,
            samples_per_source=128, seed=9,
        )
        # Deploy first so the synthetic source names are known, then install a
        # staged (curriculum) mixture over them.
        system = MegaScaleData.deploy(job)
        names = system.catalog.names()
        mixture = MixtureSchedule.staged(
            [
                MixturePhase(0, {names[0]: 0.95, names[1]: 0.05}),
                MixturePhase(2, {names[0]: 0.05, names[1]: 0.95}),
            ]
        )
        system.set_mixture(mixture)
        early = system.run_step(step=0)
        late = system.run_step(step=3)

        def share(result, name):
            demands = result.plan.source_demands
            total = sum(len(ids) for ids in demands.values())
            return len(demands.get(name, [])) / max(1, total)

        assert share(early, names[0]) > share(late, names[0])
        assert share(late, names[1]) > share(early, names[1])


class TestFaultToleranceIntegration:
    def test_shadow_loader_failover_keeps_training_going(self):
        job = TrainingJobSpec(
            pp=1, dp=2, cp=1, tp=1, encoder=None, strategy="backbone_balance",
            samples_per_dp_step=8, num_microbatches=2, num_sources=3,
            samples_per_source=64, enable_shadow_loaders=True, seed=1,
        )
        system = MegaScaleData.deploy(job)
        system.run_step()

        victim = system.loader_handles[0]
        system.fault_manager.checkpoint_loader(victim, step=0)
        system.system.failures.fail(victim.name)
        failed = system.fault_manager.detect_failures(system.loader_handles)
        assert victim in failed

        promoted = system.fault_manager.recover_loader(victim, step=1)
        system.loader_handles[0] = promoted
        system.planner_handle.instance().register_loaders(system.loader_handles)

        result = system.run_step()
        assert result.deliveries
        assert system.fault_manager.events()[-1].kind == "shadow_promotion"

    def test_planner_restart_resumes_from_gcs(self):
        job = TrainingJobSpec(
            pp=1, dp=1, cp=1, tp=1, encoder=None, strategy="vanilla",
            samples_per_dp_step=4, num_microbatches=2, num_sources=2,
            samples_per_source=32, seed=2,
        )
        system = MegaScaleData.deploy(job)
        system.run_step()
        system.run_step()
        planner = system.planner_handle.instance()
        state = planner.state_dict()
        system.system.kill_actor("planner")
        system.system.restart_actor("planner", state=state)
        restarted = system.planner_handle.instance()
        restarted.register_loaders(system.loader_handles)
        assert restarted.replay_from_gcs() >= 2
