"""Unit tests for Source Loader actors."""

from __future__ import annotations

import pytest

from repro.actors.runtime import ActorSystem, ClusterSpec
from repro.core.source_loader import WORKER_CONTEXT_BYTES, SourceLoader
from repro.errors import PlanError
from repro.utils.units import GIB


@pytest.fixture()
def system():
    return ActorSystem(ClusterSpec(accelerator_nodes=1, cpu_pods=1))


def spawn_loader(system, catalog, filesystem, source_index=0, **kwargs):
    source = catalog.sources()[source_index]
    unique = len(system.list_actor_names())
    return system.create_actor(
        lambda: SourceLoader(source, filesystem, **kwargs),
        name=f"loader-{source_index}-{kwargs.get('shard_index', 0)}-{unique}",
        memory_bytes=GIB,
    )


class TestLifecycle:
    def test_on_start_opens_files_and_fills_buffer(self, system, small_catalog, filesystem):
        handle = spawn_loader(system, small_catalog, filesystem, buffer_size=32, num_workers=2)
        loader = handle.instance()
        assert loader.buffer_depth() == 32
        assert loader.ledger.live_bytes("file_state") > 0
        assert loader.ledger.live_bytes("worker_context") == 2 * WORKER_CONTEXT_BYTES

    def test_stop_releases_memory(self, system, small_catalog, filesystem):
        handle = spawn_loader(system, small_catalog, filesystem, buffer_size=16)
        system.stop_actor(handle.name)
        assert system.total_memory() == 0

    def test_invalid_configuration(self, small_catalog, filesystem):
        source = small_catalog.sources()[0]
        with pytest.raises(PlanError):
            SourceLoader(source, filesystem, num_workers=0)
        with pytest.raises(PlanError):
            SourceLoader(source, filesystem, buffer_size=0)


class TestPrepareAndFetch:
    def test_prepare_stages_and_fetch_delivers(self, system, small_catalog, filesystem):
        handle = spawn_loader(system, small_catalog, filesystem, buffer_size=16)
        loader = handle.instance()
        sample_ids = [m.sample_id for m in loader.summary_buffer()[:4]]
        result = handle.call("prepare", sample_ids)
        assert result["num_samples"] == 4
        assert result["transform_latency_s"] > 0
        assert loader.staged_count() == 4
        delivered = handle.call("fetch_prepared", sample_ids)
        assert [d.sample.sample_id for d in delivered] == sample_ids
        assert loader.staged_count() == 0

    def test_prepare_refills_buffer(self, system, small_catalog, filesystem):
        handle = spawn_loader(system, small_catalog, filesystem, buffer_size=16)
        loader = handle.instance()
        sample_ids = [m.sample_id for m in loader.summary_buffer()[:8]]
        handle.call("prepare", sample_ids)
        assert loader.buffer_depth() == 16

    def test_worker_parallelism_amortizes_wall_clock(self, system, small_catalog, filesystem):
        one = spawn_loader(system, small_catalog, filesystem, buffer_size=16, num_workers=1)
        four = spawn_loader(
            system, small_catalog, filesystem, buffer_size=16, num_workers=4, shard_index=0,
        )
        ids_one = [m.sample_id for m in one.instance().summary_buffer()[:8]]
        ids_four = [m.sample_id for m in four.instance().summary_buffer()[:8]]
        slow = one.call("prepare", ids_one)
        fast = four.call("prepare", ids_four)
        assert fast["wall_clock_s"] < slow["wall_clock_s"]

    def test_unknown_sample_rejected(self, system, small_catalog, filesystem):
        handle = spawn_loader(system, small_catalog, filesystem)
        with pytest.raises(PlanError):
            handle.call("prepare", [999_999])

    def test_fetch_unstaged_sample_rejected(self, system, small_catalog, filesystem):
        handle = spawn_loader(system, small_catalog, filesystem)
        with pytest.raises(PlanError):
            handle.call("fetch_prepared", [123456])

    def test_staged_memory_released_on_fetch(self, system, small_catalog, filesystem):
        handle = spawn_loader(system, small_catalog, filesystem, buffer_size=16)
        loader = handle.instance()
        ids = [m.sample_id for m in loader.summary_buffer()[:4]]
        handle.call("prepare", ids)
        staged_bytes = loader.ledger.live_bytes("sample_payload")
        assert staged_bytes > 0
        handle.call("fetch_prepared", ids)
        assert loader.ledger.live_bytes("sample_payload") == 0

    def test_deferred_transforms_reduce_transfer(self, system, small_catalog, filesystem):
        image_index = next(
            i for i, s in enumerate(small_catalog.sources()) if s.avg_image_tokens > 0
        )
        eager = spawn_loader(system, small_catalog, filesystem, source_index=image_index)
        deferred = system.create_actor(
            lambda: SourceLoader(
                small_catalog.sources()[image_index],
                filesystem,
                deferred_transforms={"image_decode"},
            ),
            name="deferred-loader",
            memory_bytes=GIB,
        )
        ids_eager = [m.sample_id for m in eager.instance().summary_buffer()[:4]]
        ids_deferred = [m.sample_id for m in deferred.instance().summary_buffer()[:4]]
        eager_bytes = eager.call("prepare", ids_eager)["staged_bytes"]
        deferred_bytes = deferred.call("prepare", ids_deferred)["staged_bytes"]
        assert deferred_bytes < eager_bytes


class TestShardingAndCheckpoint:
    def test_shards_have_disjoint_buffers(self, system, small_catalog, filesystem):
        a = spawn_loader(system, small_catalog, filesystem, shard_index=0, shard_count=2, buffer_size=8)
        b = spawn_loader(system, small_catalog, filesystem, shard_index=1, shard_count=2, buffer_size=8)
        ids_a = {m.sample_id for m in a.instance().summary_buffer()}
        ids_b = {m.sample_id for m in b.instance().summary_buffer()}
        assert not ids_a & ids_b

    def test_state_dict_roundtrip(self, system, small_catalog, filesystem):
        handle = spawn_loader(system, small_catalog, filesystem, buffer_size=8)
        loader = handle.instance()
        ids = [m.sample_id for m in loader.summary_buffer()[:4]]
        handle.call("prepare", ids)
        state = loader.state_dict()
        assert state["samples_prepared"] == 4

        fresh = SourceLoader(loader.source, filesystem, buffer_size=8)
        fresh.on_start()
        fresh.load_state_dict(state)
        assert fresh.stats.samples_prepared == 4

    def test_state_dict_source_mismatch(self, system, small_catalog, filesystem):
        a = spawn_loader(system, small_catalog, filesystem, source_index=0)
        b = spawn_loader(system, small_catalog, filesystem, source_index=1)
        with pytest.raises(PlanError):
            b.instance().load_state_dict(a.instance().state_dict())

    def test_heartbeat_payload(self, system, small_catalog, filesystem):
        handle = spawn_loader(system, small_catalog, filesystem, buffer_size=8)
        payload = handle.call("heartbeat_payload")
        assert payload["buffer_depth"] == 8
        assert payload["source"] == small_catalog.sources()[0].name

    def test_differential_checkpoint_interval(self, system, small_catalog, filesystem):
        handle = spawn_loader(system, small_catalog, filesystem, buffer_size=8)
        loader = handle.instance()
        assert not loader.should_checkpoint()
        loader._steps_since_checkpoint = loader._checkpoint_interval
        assert loader.should_checkpoint()
        loader.mark_checkpointed()
        assert not loader.should_checkpoint()


class TestAsyncPrepareProtocol:
    def test_poll_until_done_matches_sync_prepare(self, system, small_catalog, filesystem):
        sync_handle = spawn_loader(system, small_catalog, filesystem, buffer_size=16)
        async_handle = spawn_loader(system, small_catalog, filesystem, buffer_size=16)
        ids = [m.sample_id for m in sync_handle.instance().summary_buffer()[:6]]

        sync_result = sync_handle.call("prepare", ids)

        async_handle.call("prepare_async", 0, ids)
        polls = 0
        while True:
            status = async_handle.call("poll", 0, 2)
            polls += 1
            if status.get("done"):
                break
        assert polls >= 3  # chunked: 6 samples at 2 per poll
        for key in ("transform_latency_s", "wall_clock_s", "staged_bytes", "num_samples"):
            assert status[key] == pytest.approx(sync_result[key])
        # Both loaders staged the same samples and can deliver them.
        assert async_handle.instance().staged_count() == sync_handle.instance().staged_count()
        delivered = async_handle.call("fetch_prepared", ids)
        assert [p.sample.sample_id for p in delivered] == ids

    def test_duplicate_ticket_rejected(self, system, small_catalog, filesystem):
        handle = spawn_loader(system, small_catalog, filesystem, buffer_size=8)
        ids = [m.sample_id for m in handle.instance().summary_buffer()[:2]]
        handle.call("prepare_async", 7, ids)
        with pytest.raises(PlanError):
            handle.call("prepare_async", 7, ids)

    def test_poll_unknown_ticket_rejected(self, system, small_catalog, filesystem):
        handle = spawn_loader(system, small_catalog, filesystem, buffer_size=8)
        with pytest.raises(PlanError):
            handle.call("poll", 99)

    def test_cancel_prepare_retires_ticket(self, system, small_catalog, filesystem):
        handle = spawn_loader(system, small_catalog, filesystem, buffer_size=8)
        ids = [m.sample_id for m in handle.instance().summary_buffer()[:4]]
        handle.call("prepare_async", 1, ids)
        handle.call("poll", 1, 2)  # partially prepared
        assert handle.call("cancel_prepare", 1)
        assert not handle.call("cancel_prepare", 1)
        assert handle.instance().inflight_tickets() == []
        # The partially staged samples can be explicitly discarded.
        staged_before = handle.instance().staged_count()
        assert staged_before == 2
        assert handle.call("discard_staged", ids) == 2
        assert handle.instance().ledger.live_bytes("sample_payload") == 0

    def test_replay_demands_reproduces_buffer_state(self, system, small_catalog, filesystem):
        primary = spawn_loader(system, small_catalog, filesystem, buffer_size=12)
        replica = spawn_loader(system, small_catalog, filesystem, buffer_size=12)
        first = [m.sample_id for m in primary.instance().summary_buffer()[:3]]
        primary.call("prepare", first)
        second = [m.sample_id for m in primary.instance().summary_buffer()[:3]]
        primary.call("prepare", second)

        # Replaying the same demand history (without staging) must leave the
        # replica's buffer identical to the primary's.
        assert replica.call("replay_demands", first) == 3
        assert replica.call("replay_demands", second) == 3
        primary_ids = [m.sample_id for m in primary.instance().summary_buffer()]
        replica_ids = [m.sample_id for m in replica.instance().summary_buffer()]
        assert primary_ids == replica_ids
        assert replica.instance().staged_count() == 0
        # Ids from other shards are ignored rather than failing.
        assert replica.call("replay_demands", [10**9]) == 0


class TestBufferDeltaProtocol:
    """The incremental gather RPC behind the Planner's columnar fast path."""

    @staticmethod
    def _mirror(handle):
        from repro.core.columns import ColumnarBufferCache

        loader = handle.instance()
        cache = ColumnarBufferCache(source=loader.source.name)
        reply = handle.call("buffer_delta", cache.epoch, cache.seq)
        assert reply["resync"]  # a fresh consumer always snapshots
        cache.snapshot(reply["buffer"])
        cache.epoch, cache.seq = reply["epoch"], reply["seq"]
        return cache

    @staticmethod
    def _pull(handle, cache):
        reply = handle.call("buffer_delta", cache.epoch, cache.seq)
        if reply["resync"]:
            cache.snapshot(reply["buffer"])
        else:
            cache.apply(reply["events"])
        cache.epoch, cache.seq = reply["epoch"], reply["seq"]
        return reply

    def test_deltas_reconstruct_buffer_order_exactly(self, system, small_catalog, filesystem):
        handle = spawn_loader(system, small_catalog, filesystem, buffer_size=16)
        cache = self._mirror(handle)
        for round_index in range(4):
            ids = [m.sample_id for m in handle.instance().summary_buffer()][
                round_index::5
            ]
            handle.call("prepare", ids)
            handle.call("fetch_prepared", ids)
            reply = self._pull(handle, cache)
            assert not reply["resync"]  # steady state ships only the churn
            assert len(reply["events"]) <= 2 * len(ids) + 1
            assert cache.sample_ids() == [
                m.sample_id for m in handle.instance().summary_buffer()
            ]

    def test_empty_delta_between_quiet_steps(self, system, small_catalog, filesystem):
        handle = spawn_loader(system, small_catalog, filesystem, buffer_size=8)
        cache = self._mirror(handle)
        reply = self._pull(handle, cache)
        assert not reply["resync"]
        assert reply["events"] == []

    def test_pristine_replay_bumps_epoch_and_forces_resync(
        self, system, small_catalog, filesystem
    ):
        handle = spawn_loader(system, small_catalog, filesystem, buffer_size=8)
        cache = self._mirror(handle)
        handle.call("reset_for_replay")
        reply = self._pull(handle, cache)
        assert reply["resync"]
        assert cache.sample_ids() == [
            m.sample_id for m in handle.instance().summary_buffer()
        ]

    def test_unconsumed_log_is_capped_and_degrades_to_resync(
        self, system, small_catalog, filesystem
    ):
        handle = spawn_loader(system, small_catalog, filesystem, buffer_size=4)
        cache = self._mirror(handle)
        loader = handle.instance()
        # Churn far past the log cap without ever gathering.
        for _ in range(loader._delta_cap):
            ids = [m.sample_id for m in loader.summary_buffer()[:2]]
            handle.call("prepare", ids)
            handle.call("fetch_prepared", ids)
        assert len(loader._delta_log) <= loader._delta_cap
        reply = self._pull(handle, cache)
        assert reply["resync"]
        assert cache.sample_ids() == [m.sample_id for m in loader.summary_buffer()]

    def test_declared_source_names_the_deployed_source(
        self, system, small_catalog, filesystem
    ):
        handle = spawn_loader(system, small_catalog, filesystem)
        assert handle.call("declared_source") == handle.instance().source.name
