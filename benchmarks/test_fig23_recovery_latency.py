"""Fig. 23 (recovery leg) — loader recovery latency vs run length.

Before this PR, recovering a failed Source Loader replayed the *entire* plan
history from genesis: a pristine restart followed by ``replay_demands`` for
every plan ever generated — O(steps) work that grows without bound over a
production run.  The durable control plane fixes this with differential
checkpoints: the FaultToleranceManager snapshots each loader's replay state
(buffer + cursor) on the checkpoint interval, the Planner persists plans past
its bounded in-memory window into a :class:`CheckpointStore`, and recovery
restores the newest consistent snapshot and replays only the post-checkpoint
suffix — O(interval), flat in run length.

This benchmark drives a loader fleet + Planner + FaultToleranceManager for
{100, 400, 1600} steps and then measures wall-clock recovery of one loader
under both policies:

- ``bounded`` — restore the latest consistent differential checkpoint, replay
  the plan suffix after it (at most the checkpoint interval of plans);
- ``full`` — reset to genesis and replay every plan of the run (the
  pre-checkpoint-store behaviour).

Both reconstructions must land on byte-identical buffer state (the
conditional-refill replay semantics guarantee cursor parity), which is
asserted every sweep point.  The bounded path must stay approximately flat
across the sweep and beat full replay by **>= 5x** at 1600 steps.  Results go
to ``BENCH_fig23_recovery.json``; the CI ``recovery-bench`` leg re-runs the
middle point in smoke mode and gates on a >30% bounded-recovery throughput
regression via ``check_recovery_regression.py``.

Env knobs: ``BENCH_RECOVERY_SMOKE=1`` restricts the sweep to the middle point
(CI smoke) and writes the ``smoke`` section of the artifact.
"""

from __future__ import annotations

import os
import time

from repro.actors.runtime import ActorSystem, ClusterSpec
from repro.core.checkpoint import InMemoryCheckpointStore
from repro.core.fault_tolerance import FaultToleranceConfig, FaultToleranceManager
from repro.core.place_tree import ClientPlaceTree
from repro.core.planner import Planner
from repro.core.source_loader import SourceLoader
from repro.core.strategies import StrategyConfig, backbone_balance_strategy
from repro.data.mixture import MixtureSchedule
from repro.data.synthetic import build_source_catalog, navit_like_spec
from repro.metrics.report import MetricReport
from repro.parallelism.mesh import DeviceMesh
from repro.storage.filesystem import SimulatedFileSystem
from repro.utils.units import GIB

from .conftest import emit, write_bench_json

#: Run lengths (training steps before the crash).  The smoke point must stay
#: in the full sweep so the CI gate can compare fresh smoke rows against
#: committed ones.
SWEEP_POINTS = (100, 400, 1600)
#: The smoke (CI) point is the middle sweep point: long enough for the full
#: replay to have a measurable timed region, short enough for CI.
SMOKE_POINTS = (400,)
NUM_SOURCES = 4
SAMPLES_PER_SOURCE = 512
BUFFER_SIZE = 64
#: Samples mixed per plan, fixed across the sweep.
BATCH_SAMPLES = 32
#: Differential checkpoint interval == the Planner's bounded replay window:
#: bounded recovery replays at most this many plans, whatever the run length.
CHECKPOINT_INTERVAL = 25
#: Repeat each timed recovery and keep the *minimum*: recovery regions are
#: a few milliseconds, where one GC or scheduler pause under a loaded runner
#: dwarfs the signal; the min is the standard robust timing estimator.
REPETITIONS = 5
#: Required full-over-bounded recovery speedup at the longest run.
REQUIRED_SPEEDUP = 5.0
#: Bounded recovery across a 16x run-length spread must stay within this
#: factor — "flat", allowing for timer noise on small absolute latencies.
FLATNESS_FACTOR = 4.0


def _smoke_mode() -> bool:
    return os.environ.get("BENCH_RECOVERY_SMOKE", "0") == "1"


def _buffer_ids(handle) -> list[int]:
    return [m.sample_id for m in handle.instance().summary_buffer()]


def _drive(num_steps: int) -> dict[str, object]:
    """Run ``num_steps`` of plan/consume churn, then time both recoveries."""
    filesystem = SimulatedFileSystem()
    catalog = build_source_catalog(
        navit_like_spec(
            num_sources=NUM_SOURCES, samples_per_source=SAMPLES_PER_SOURCE, seed=0
        ),
        filesystem,
    )
    system = ActorSystem(ClusterSpec(accelerator_nodes=4, cpu_pods=1))
    handles = []
    for index, source in enumerate(catalog.sources()):
        handles.append(
            system.create_actor(
                lambda src=source: SourceLoader(src, filesystem, buffer_size=BUFFER_SIZE),
                name=f"loader-{index}",
                memory_bytes=GIB,
            )
        )
    store = InMemoryCheckpointStore()
    mixture = MixtureSchedule.uniform(catalog.names())
    tree = ClientPlaceTree(DeviceMesh(pp=1, dp=4, cp=1, tp=1, gpus_per_node=4))
    planner = Planner(
        strategy=backbone_balance_strategy(
            StrategyConfig(
                mixture=mixture, sample_count=BATCH_SAMPLES, num_microbatches=2
            )
        ),
        tree=tree,
        mixture=mixture,
        checkpoint_store=store,
        replay_window=CHECKPOINT_INTERVAL,
    )
    planner.register_loaders(handles)
    fault_manager = FaultToleranceManager(
        system,
        FaultToleranceConfig(loader_checkpoint_interval=CHECKPOINT_INTERVAL),
        checkpoint_store=store,
    )

    # The training run: one plan per step, every loader consumes its demands
    # (the live replay_demands semantics: refill iff something was consumed),
    # and the fault manager takes interval-gated consistent checkpoints at
    # the per-step sync point.
    for step in range(num_steps):
        plan = planner.generate_plan(step)
        for handle in handles:
            ids = plan.source_demands.get(handle.instance().source.name, [])
            if ids:
                handle.call("replay_demands", list(ids))
            fault_manager.checkpoint_loader(handle, step, consistent=True)

    victim = handles[0]
    source_name = victim.instance().source.name
    live_ids = _buffer_ids(victim)

    def replay_suffix(after_step: int) -> int:
        replayed = 0
        for plan in planner.plans_since(after_step):
            demanded = plan.source_demands.get(source_name, [])
            if demanded:
                victim.call("replay_demands", list(demanded))
            replayed += 1
        return replayed

    # Bounded: restore the newest consistent differential checkpoint, replay
    # only the post-checkpoint plan suffix (store reads included in the cost).
    bounded_times = []
    for _ in range(REPETITIONS):
        begin = time.perf_counter()
        entry = fault_manager.last_loader_checkpoint(victim.name, consistent=True)
        victim.call("restore_replay_checkpoint", entry["replay"])
        suffix_plans = replay_suffix(entry["step"])
        bounded_times.append(time.perf_counter() - begin)
    bounded_ids = _buffer_ids(victim)

    # Full: the pre-durability behaviour — reset to genesis, replay the run.
    full_times = []
    for _ in range(REPETITIONS):
        begin = time.perf_counter()
        victim.call("reset_for_replay")
        full_plans = replay_suffix(-1)
        full_times.append(time.perf_counter() - begin)
    full_ids = _buffer_ids(victim)

    # Both reconstructions must land on the live loader's exact buffer state.
    assert bounded_ids == live_ids
    assert full_ids == live_ids
    assert suffix_plans <= CHECKPOINT_INTERVAL
    assert full_plans == num_steps

    bounded_s = min(bounded_times)
    full_s = min(full_times)
    return {
        "steps": num_steps,
        "checkpoint_interval": CHECKPOINT_INTERVAL,
        "bounded_replay_plans": suffix_plans,
        "full_replay_plans": full_plans,
        "bounded_recovery_ms": bounded_s * 1e3,
        "full_recovery_ms": full_s * 1e3,
        "recoveries_per_s_bounded": 1.0 / bounded_s if bounded_s > 0 else float("inf"),
        "speedup": full_s / bounded_s if bounded_s > 0 else float("inf"),
    }


def _sweep(points) -> list[dict[str, object]]:
    return [_drive(steps) for steps in points]


def test_fig23_recovery_latency(benchmark):
    smoke = _smoke_mode()
    points = SMOKE_POINTS if smoke else SWEEP_POINTS
    rows = benchmark(_sweep, points)

    report = MetricReport(
        title="Fig. 23 (recovery) - loader recovery latency vs run length",
        columns=[
            "steps", "ckpt interval", "bounded plans", "full plans",
            "bounded ms", "full ms", "speedup",
        ],
    )
    for row in rows:
        report.add_row(
            row["steps"],
            row["checkpoint_interval"],
            row["bounded_replay_plans"],
            row["full_replay_plans"],
            round(row["bounded_recovery_ms"], 2),
            round(row["full_recovery_ms"], 2),
            round(row["speedup"], 2),
        )
    emit(report)

    write_bench_json(
        "fig23_recovery",
        "smoke" if smoke else "recovery_latency",
        {
            "rows": rows,
            "checkpoint_interval": CHECKPOINT_INTERVAL,
            "batch_samples": BATCH_SAMPLES,
            "repetitions": REPETITIONS,
        },
    )

    # Bounded replay work is capped by the interval at every run length.
    assert all(row["bounded_replay_plans"] <= CHECKPOINT_INTERVAL for row in rows)
    if not smoke:
        shortest, longest = rows[0], rows[-1]
        # Full replay is linear in the run: 16x the steps, >> the wall time.
        assert longest["full_recovery_ms"] > shortest["full_recovery_ms"]
        # Bounded recovery is flat: run length must not leak into the cost.
        assert longest["bounded_recovery_ms"] <= (
            FLATNESS_FACTOR * max(shortest["bounded_recovery_ms"], 1e-3)
        )
        # The tentpole claim: >= 5x faster than full replay at 1600 steps.
        assert longest["speedup"] >= REQUIRED_SPEEDUP
        # The gap widens with run length (O(interval) vs O(steps)).
        assert longest["speedup"] > shortest["speedup"]
