"""CI gate: fail when the wallclock backend's prefetch overlap regresses.

The ``wallclock-bench`` CI leg runs ``test_fig25_wallclock`` in smoke mode
(``BENCH_WALLCLOCK_SMOKE=1``), which merges a fresh ``smoke`` section into
``BENCH_fig25_wallclock.json`` next to the committed full-sweep
``wallclock`` section.  This script compares the fresh smoke run against the
committed numbers and exits non-zero on a regression beyond the threshold
(default: 30%).

All gated quantities are noise-tolerant by construction:

- ``hidden_fraction`` (hidden / fetched time of the deepest measured run)
  is the same-run overlap ratio: both sides are measured inside one run on
  one machine, so a slow CI runner stretches them together — the gate
  tracks how much of the fetch real prefetching hides, not absolute runner
  speed;
- ``stall_reduction`` (measured depth-0 stall / deepest-depth stall) is
  gated only on *having a gain at all* — its denominator is a small number
  with real thread-scheduling noise, so its magnitude is not compared;
- ``byte_identical`` and ``reconciliation.within_tolerance`` are booleans
  computed inside the run (cross-backend data identity; calibrated replay
  agreeing with measurement within the benchmark's stated tolerance).
"""

from __future__ import annotations

import sys

from _regression import gate_ratio, load_sections, make_parser


def main(argv: list[str] | None = None) -> int:
    args = make_parser(__doc__, "BENCH_fig25_wallclock.json").parse_args(argv)

    committed, fresh = load_sections(args.artifact, "wallclock")
    if not committed or not fresh:
        return 1

    failures = 0

    # Machine-independent same-run overlap ratio: how much of the deepest
    # run's measured fetch time prefetching hid.
    if not gate_ratio(
        "hidden_fraction",
        float(fresh["hidden_fraction"]),
        float(committed["hidden_fraction"]),
        args.threshold,
    ):
        failures += 1

    # The stall quotient's denominator is small and thread-noise sensitive;
    # gate only on the qualitative claim (depth>0 strictly beats depth 0).
    stall_reduction = float(fresh["stall_reduction"])
    print(f"stall_reduction: x{stall_reduction:.3f}")
    if stall_reduction <= 1.0:
        print("REGRESSION: depth>0 no longer beats depth 0 on measured stall")
        failures += 1

    for row in fresh.get("rows", []):
        if not row.get("byte_identical", False):
            print(
                f"depth {row.get('prefetch_depth')}: REGRESSION "
                "(wallclock batches diverged from virtual)"
            )
            failures += 1
    reconciliation = fresh.get("reconciliation", {})
    within = reconciliation.get("within_tolerance", False)
    print(f"calibration reconciliation within tolerance: {within}")
    if not within:
        for name, entry in reconciliation.get("metrics", {}).items():
            print(
                f"  {name}: measured {entry['measured_s']:.3f}s vs simulated "
                f"{entry['simulated_s']:.3f}s (rel {entry['rel_error']:.2f})"
            )
        failures += 1

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
