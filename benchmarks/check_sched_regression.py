"""CI gate: fail when scheduler dispatch throughput regresses vs the artifact.

The ``scheduler-bench`` CI leg runs ``test_fig20_scheduler_scalability`` in
smoke mode (``BENCH_SCHED_SMOKE=1``), which merges a fresh ``smoke`` section
into ``BENCH_fig20_sched.json`` next to the committed full-sweep
``scheduler_scalability`` section.  This script compares the fresh smoke
events/sec for the indexed dispatcher against the committed row at the same
actor count and exits non-zero on a regression beyond the threshold
(default: 30%, per the perf budget for this figure).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--artifact",
        type=Path,
        default=Path("BENCH_fig20_sched.json"),
        help="merged benchmark artifact (committed sweep + fresh smoke rows)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="maximum tolerated fractional events/sec regression",
    )
    args = parser.parse_args(argv)

    document = json.loads(args.artifact.read_text())
    committed = {
        row["actors"]: row
        for row in document.get("scheduler_scalability", {}).get("rows", [])
    }
    fresh_rows = document.get("smoke", {}).get("rows", [])
    if not committed:
        print("no committed scheduler_scalability section — nothing to compare")
        return 1
    if not fresh_rows:
        print("no fresh smoke section — run the benchmark with BENCH_SCHED_SMOKE=1")
        return 1

    failures = 0
    for row in fresh_rows:
        actors = row["actors"]
        baseline = committed.get(actors)
        if baseline is None:
            print(f"actors={actors}: no committed baseline row, skipping")
            continue
        fresh = row["indexed_events_per_s"]
        reference = baseline["indexed_events_per_s"]
        ratio = fresh / reference if reference > 0 else float("inf")
        status = "ok" if ratio >= 1.0 - args.threshold else "REGRESSION"
        print(
            f"actors={actors}: indexed {fresh:,.0f} ev/s vs committed "
            f"{reference:,.0f} ev/s (x{ratio:.2f}) — {status}"
        )
        # Machine-independent context: the indexed-vs-linear speedup measured
        # in the *same* smoke run, next to the committed sweep's speedup.  A
        # slow runner depresses both dispatchers equally, so a healthy
        # speedup alongside a failed absolute check points at the runner,
        # not the code.
        print(
            f"actors={actors}: same-run speedup x{row['speedup']:.2f} "
            f"(committed sweep x{baseline['speedup']:.2f})"
        )
        if status != "ok":
            failures += 1

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
