"""CI gate: fail when scheduler dispatch throughput regresses vs the artifact.

The ``scheduler-bench`` CI leg runs ``test_fig20_scheduler_scalability`` in
smoke mode (``BENCH_SCHED_SMOKE=1``), which merges a fresh ``smoke`` section
into ``BENCH_fig20_sched.json`` next to the committed full-sweep
``scheduler_scalability`` section.  This script compares the fresh smoke
events/sec for the indexed dispatcher against the committed row at the same
actor count and exits non-zero on a regression beyond the threshold
(default: 30%, per the perf budget for this figure).
"""

from __future__ import annotations

import sys

from _regression import gate_ratio, load_sections, make_parser


def main(argv: list[str] | None = None) -> int:
    args = make_parser(__doc__, "BENCH_fig20_sched.json").parse_args(argv)

    committed_section, fresh_section = load_sections(
        args.artifact, "scheduler_scalability"
    )
    if not committed_section or not fresh_section:
        return 1
    committed = {row["actors"]: row for row in committed_section.get("rows", [])}
    fresh_rows = fresh_section.get("rows", [])
    if not committed:
        print("committed scheduler_scalability section has no rows — nothing to compare")
        return 1
    if not fresh_rows:
        print("fresh smoke section has no rows — run the benchmark with BENCH_SCHED_SMOKE=1")
        return 1

    failures = 0
    for row in fresh_rows:
        actors = row["actors"]
        baseline = committed.get(actors)
        if baseline is None:
            print(f"actors={actors}: no committed baseline row, skipping")
            continue
        ok = gate_ratio(
            f"actors={actors} indexed ev/s",
            row["indexed_events_per_s"],
            baseline["indexed_events_per_s"],
            args.threshold,
        )
        # Machine-independent context: the indexed-vs-linear speedup measured
        # in the *same* smoke run, next to the committed sweep's speedup.  A
        # slow runner depresses both dispatchers equally, so a healthy
        # speedup alongside a failed absolute check points at the runner,
        # not the code.
        print(
            f"actors={actors}: same-run speedup x{row['speedup']:.2f} "
            f"(committed sweep x{baseline['speedup']:.2f})"
        )
        if not ok:
            failures += 1

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
