"""Fig. 16 — contribution of each MegaScale-Data component.

The paper ablates, on the 576-GPU trial: (a) the baseline loader,
(b) +Disaggregation (Source Loaders / Data Constructors, no balancing),
(c) +Orchestration (hybrid load balancing), (d) +AutoScaler and
(e) +Fault Tolerance (two shadow loaders).  Expected shape: disaggregation
cuts loader memory by roughly an order of magnitude at a ~10% latency cost,
orchestration brings a large speedup at negligible memory cost, the
AutoScaler trims memory further, and fault tolerance adds a predictable
memory premium without hurting speed.
"""

from __future__ import annotations

from repro.baselines.megascale_model import MegaScaleArchitectureModel
from repro.baselines.torch_loader import TorchColocatedLoader
from repro.core.autoscaler import ResourceBudget, SourceAutoPartitioner
from repro.metrics.report import MetricReport
from repro.training.models import VLMConfig, llama_12b, vit_2b
from repro.training.simulator import TrainingSimulator
from repro.utils.units import GIB, bytes_to_gib

from .conftest import emit, sample_batch

SAMPLES_PER_DP = 48
NUM_MICROBATCHES = 6


class _DisaggregatedOnly(MegaScaleArchitectureModel):
    """Disaggregated loaders/constructors but no cost-based balancing."""

    def build_assignments(self, samples, seed: int = 0):
        return TorchColocatedLoader.build_assignments(self, samples, seed)


def _ablation(catalog, filesystem, mesh):
    samples = sample_batch(catalog, filesystem, SAMPLES_PER_DP * mesh.size("DP"), seed=16)
    model = VLMConfig(encoder=vit_2b(), backbone=llama_12b())
    simulator = TrainingSimulator(model, mesh)
    kwargs = {"samples_per_dp_step": SAMPLES_PER_DP, "num_microbatches": NUM_MICROBATCHES,
              "target_iteration_time_s": 30.0}

    def run(loader, label):
        report = loader.evaluate()
        iteration = simulator.simulate_iteration(
            loader.build_assignments(samples, seed=16),
            data_fetch_latency_s=report.fetch_latency_s,
        )
        return {
            "label": label,
            "iteration_s": iteration.iteration_time_s,
            "memory_gib": bytes_to_gib(report.total_memory_bytes),
        }

    rows = []
    baseline = TorchColocatedLoader(catalog, mesh, **kwargs)
    rows.append(run(baseline, "(a) Baseline"))
    disagg = _DisaggregatedOnly(catalog, mesh, **kwargs)
    rows.append(run(disagg, "(b) + Disaggregation"))
    orchestrated = MegaScaleArchitectureModel(catalog, mesh, **kwargs)
    rows.append(run(orchestrated, "(c) + Orchestration"))

    # (d) + AutoScaler: re-partition under a tight memory budget, trimming the
    # per-source worker allocation (memory drops, latency unchanged).
    autoscaled = MegaScaleArchitectureModel(catalog, mesh, **kwargs)
    autoscaled.partition_plan = SourceAutoPartitioner(max_workers_per_source=8).partition(
        catalog, ResourceBudget(cpu_cores=256.0, memory_bytes=24 * GIB)
    )
    rows.append(run(autoscaled, "(d) + AutoScaler"))

    # (e) + Fault Tolerance: two shadow loaders add their resident state.
    with_ft = run(MegaScaleArchitectureModel(catalog, mesh, **kwargs), "(e) + Fault Tolerance")
    shadow_state = 2 * (autoscaled.memory_breakdown()["source_state"] / max(1, autoscaled.partition_plan.total_actors()))
    with_ft["memory_gib"] = rows[-1]["memory_gib"] + bytes_to_gib(shadow_state * 64)
    rows.append(with_ft)
    return rows


def test_fig16_component_ablation(benchmark, navit_catalog, filesystem, mesh_576):
    rows = benchmark(_ablation, navit_catalog, filesystem, mesh_576)

    baseline = rows[0]
    report = MetricReport(
        title="Fig. 16 - component contributions (576-GPU configuration)",
        columns=["configuration", "iteration time (s)", "relative speed", "memory (GiB)",
                 "relative memory"],
    )
    for row in rows:
        report.add_row(
            row["label"],
            round(row["iteration_s"], 2),
            round(baseline["iteration_s"] / row["iteration_s"], 2),
            round(row["memory_gib"], 2),
            round(row["memory_gib"] / baseline["memory_gib"], 3),
        )
    emit(report)

    by_label = {row["label"]: row for row in rows}
    disagg = by_label["(b) + Disaggregation"]
    orchestration = by_label["(c) + Orchestration"]
    autoscaler = by_label["(d) + AutoScaler"]
    fault_tolerance = by_label["(e) + Fault Tolerance"]

    # Disaggregation slashes memory (paper: ~9x) at a small latency cost (<= ~15%).
    assert disagg["memory_gib"] < 0.3 * baseline["memory_gib"]
    assert disagg["iteration_s"] <= baseline["iteration_s"] * 1.15
    # Orchestration recovers speed (paper: 2.7x) with negligible memory change.
    assert orchestration["iteration_s"] < disagg["iteration_s"]
    assert orchestration["iteration_s"] < baseline["iteration_s"]
    assert abs(orchestration["memory_gib"] - disagg["memory_gib"]) < 0.2 * disagg["memory_gib"] + 1.0
    # The AutoScaler trims memory further without slowing the iteration.
    assert autoscaler["memory_gib"] <= orchestration["memory_gib"] * 1.01
    assert autoscaler["iteration_s"] <= orchestration["iteration_s"] * 1.05
    # Fault tolerance costs memory but not time.
    assert fault_tolerance["memory_gib"] > autoscaler["memory_gib"]
    assert fault_tolerance["iteration_s"] <= orchestration["iteration_s"] * 1.05
