"""Table 1 — model configurations used throughout the evaluation."""

from __future__ import annotations

from repro.metrics.report import MetricReport
from repro.training.models import MODEL_ZOO, BackboneConfig, get_model

from .conftest import emit

EXPECTED = {
    "ViT-1B": (39, 16, 1408),
    "ViT-2B": (48, 16, 1664),
    "Llama-12B": (45, 36, 4608),
    "tMoE-25B": (42, 16, 2048),
    "Mixtral-8x7B": (32, 32, 4096),
}


def test_table1_model_configs(benchmark):
    models = benchmark(lambda: {name: get_model(name) for name in MODEL_ZOO})

    report = MetricReport(
        title="Table 1 - model configurations",
        columns=["model", "#layers", "#heads", "hidden size", "top-k", "approx params (B)"],
    )
    for name, model in models.items():
        topk = model.experts_per_token if isinstance(model, BackboneConfig) and model.is_moe else "-"
        report.add_row(
            name,
            model.num_layers,
            model.num_heads,
            model.hidden_size,
            topk,
            round(model.approx_params() / 1e9, 2),
        )
    emit(report)

    for name, (layers, heads, hidden) in EXPECTED.items():
        model = models[name]
        assert (model.num_layers, model.num_heads, model.hidden_size) == (layers, heads, hidden)
    assert models["ViT-2B"].approx_params() > models["ViT-1B"].approx_params()
