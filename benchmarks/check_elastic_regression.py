"""CI gate: fail when the elastic fleet's stall reduction regresses.

The ``elasticity-bench`` CI leg runs ``test_fig21_elasticity`` in smoke mode
(``BENCH_ELASTIC_SMOKE=1``), which merges a fresh ``smoke`` section into
``BENCH_fig21_elastic.json`` next to the committed full-run
``elastic_fleet`` section.  This script compares the fresh smoke run's
*same-run* elastic-vs-frozen metrics against the committed ones and exits
non-zero on a regression beyond the threshold (default: 30%).

Both gated quantities — ``stall_reduction`` (frozen stall / elastic stall)
and ``wall_speedup`` (frozen wall / elastic wall) — are ratios measured
inside one run on one machine, so a slow CI runner depresses numerator and
denominator together: the gate tracks the *benefit of elasticity*, not the
runner's absolute speed.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--artifact",
        type=Path,
        default=Path("BENCH_fig21_elastic.json"),
        help="merged benchmark artifact (committed full run + fresh smoke)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="maximum tolerated fractional regression of the elasticity benefit",
    )
    args = parser.parse_args(argv)

    document = json.loads(args.artifact.read_text())
    committed = document.get("elastic_fleet")
    fresh = document.get("smoke")
    if not committed:
        print("no committed elastic_fleet section — nothing to compare")
        return 1
    if not fresh:
        print("no fresh smoke section — run the benchmark with BENCH_ELASTIC_SMOKE=1")
        return 1

    failures = 0
    for metric in ("stall_reduction", "wall_speedup"):
        fresh_value = float(fresh[metric])
        reference = float(committed[metric])
        # The smoke run is shorter than the committed full run, so compare
        # the *gain over parity* (value - 1): a fleet that stopped helping
        # at all trips the gate regardless of run length.
        fresh_gain = fresh_value - 1.0
        reference_gain = reference - 1.0
        ratio = fresh_gain / reference_gain if reference_gain > 0 else float("inf")
        status = "ok" if fresh_gain > 0 and ratio >= 1.0 - args.threshold else "REGRESSION"
        print(
            f"{metric}: fresh x{fresh_value:.3f} vs committed x{reference:.3f} "
            f"(gain ratio {ratio:.2f}) — {status}"
        )
        if status != "ok":
            failures += 1

    elastic_rows = {row["mode"]: row for row in fresh.get("rows", [])}
    spawns = elastic_rows.get("elastic", {}).get("fleet_spawns", 0)
    print(f"smoke elastic spawns: {spawns:.0f}")
    if spawns < 1:
        print("REGRESSION: the smoke run never scaled up")
        failures += 1

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
