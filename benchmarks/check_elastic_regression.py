"""CI gate: fail when the elastic fleet's stall reduction regresses.

The ``elasticity-bench`` CI leg runs ``test_fig21_elasticity`` in smoke mode
(``BENCH_ELASTIC_SMOKE=1``), which merges a fresh ``smoke`` section into
``BENCH_fig21_elastic.json`` next to the committed full-run
``elastic_fleet`` section.  This script compares the fresh smoke run's
*same-run* elastic-vs-frozen metrics against the committed ones and exits
non-zero on a regression beyond the threshold (default: 30%).

Both gated quantities — ``stall_reduction`` (frozen stall / elastic stall)
and ``wall_speedup`` (frozen wall / elastic wall) — are ratios measured
inside one run on one machine, so a slow CI runner depresses numerator and
denominator together: the gate tracks the *benefit of elasticity*, not the
runner's absolute speed.
"""

from __future__ import annotations

import sys

from _regression import gate_ratio, load_sections, make_parser


def main(argv: list[str] | None = None) -> int:
    args = make_parser(__doc__, "BENCH_fig21_elastic.json").parse_args(argv)

    committed, fresh = load_sections(args.artifact, "elastic_fleet")
    if not committed or not fresh:
        return 1

    failures = 0
    for metric in ("stall_reduction", "wall_speedup"):
        # The smoke run is shorter than the committed full run, so compare
        # the *gain over parity* (value - 1): a fleet that stopped helping
        # at all trips the gate regardless of run length.
        fresh_gain = float(fresh[metric]) - 1.0
        reference_gain = float(committed[metric]) - 1.0
        if fresh_gain <= 0:
            print(f"{metric}: fresh x{float(fresh[metric]):.3f} — REGRESSION (no gain)")
            failures += 1
            continue
        if not gate_ratio(f"{metric} gain", fresh_gain, reference_gain, args.threshold):
            failures += 1

    elastic_rows = {row["mode"]: row for row in fresh.get("rows", [])}
    spawns = elastic_rows.get("elastic", {}).get("fleet_spawns", 0)
    print(f"smoke elastic spawns: {spawns:.0f}")
    if spawns < 1:
        print("REGRESSION: the smoke run never scaled up")
        failures += 1

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
