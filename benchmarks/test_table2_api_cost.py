"""Table 2 — API cost of the orchestration primitives under scaled setups.

The paper measures the latency of the ``cost`` and ``balance`` primitives for
the Llama-12B + ViT-2B job while scaling batch size, sequence length, cluster
size and the ``group_size`` knob, and shows the cost remains orders of
magnitude below the iteration time; group_size controls growth on very large
clusters.
"""

from __future__ import annotations

import pytest

from repro.core.dgraph import DGraph, metas_token
from repro.core.place_tree import ClientPlaceTree
from repro.data.synthetic import build_source_catalog, navit_like_spec
from repro.metrics.report import MetricReport
from repro.parallelism.mesh import DeviceMesh
from repro.storage.filesystem import SimulatedFileSystem
from repro.training.models import VLMConfig, get_model
from repro.training.simulator import TrainingSimulator

from .conftest import emit, sample_batch


@pytest.fixture(scope="module")
def large_catalog_fs():
    """A catalog big enough for the 1152-GPU, BS-144 sweep (no wrap-around)."""
    filesystem = SimulatedFileSystem()
    catalog = build_source_catalog(
        navit_like_spec(num_sources=60, samples_per_source=96, seed=21), filesystem
    )
    return catalog, filesystem

CASES = [
    # label, dp, samples_per_dp, max tokens, group_size
    ("baseline (288 GPUs, BS 72, 8k)", DeviceMesh(pp=8, dp=9, cp=1, tp=4, gpus_per_node=16), 72, 8192, None),
    ("+BS 72->144", DeviceMesh(pp=8, dp=9, cp=1, tp=4, gpus_per_node=16), 144, 8192, None),
    ("+Seq 8k->16k", DeviceMesh(pp=8, dp=9, cp=1, tp=4, gpus_per_node=16), 72, 16384, None),
    ("+Cluster 288->1152", DeviceMesh(pp=8, dp=36, cp=1, tp=4, gpus_per_node=16), 72, 8192, None),
    ("+Group 1->2 (1152 GPUs)", DeviceMesh(pp=8, dp=36, cp=1, tp=4, gpus_per_node=16), 72, 8192, 2),
]


def _clip(samples, limit):
    return [
        s.with_updates(
            image_tokens=min(s.image_tokens, int(limit * 0.85)),
            text_tokens=max(1, min(s.text_tokens, limit - min(s.image_tokens, int(limit * 0.85)))),
        )
        for s in samples
    ]


def _measure_case(catalog, filesystem, mesh, samples_per_dp, seq, group_size):
    samples = _clip(sample_batch(catalog, filesystem, samples_per_dp * mesh.size("DP"), seed=2), seq)
    tree = ClientPlaceTree(mesh)
    dgraph = DGraph.from_buffer_infos({"navit": samples}, metas_token).init(tree)
    dgraph.distribute("DP", group_size=group_size)
    dgraph.cost(lambda m: float(m.total_tokens) ** 2)
    dgraph.balance(method="greedy", num_microbatches=8)
    plan = dgraph.plan()

    assignments = []
    for bucket in range(min(plan.module.num_buckets, mesh.size("DP"))):
        row = [list(a.samples) for a in plan.module.bucket_assignments(bucket)]
        while len(row) < 8:
            row.append([])
        assignments.append(row)
    while len(assignments) < mesh.size("DP"):
        assignments.append([[] for _ in range(8)])
    model = VLMConfig(encoder=get_model("ViT-2B"), backbone=get_model("Llama-12B"))
    iteration = TrainingSimulator(model, mesh).simulate_iteration(assignments)
    return {
        "cost_s": dgraph.api_costs.get("cost", 0.0),
        "balance_s": dgraph.api_costs.get("balance", 0.0),
        "iteration_s": iteration.iteration_time_s,
        "buckets": plan.module.num_buckets,
    }


def test_table2_api_cost(benchmark, large_catalog_fs):
    catalog, filesystem = large_catalog_fs
    rows = benchmark(
        lambda: [
            (label, _measure_case(catalog, filesystem, mesh, bs, seq, group))
            for label, mesh, bs, seq, group in CASES
        ]
    )

    report = MetricReport(
        title="Table 2 - orchestration API cost per step",
        columns=["case", "cost() (s)", "balance() (s)", "iteration (s)", "buckets"],
    )
    for label, row in rows:
        report.add_row(label, round(row["cost_s"], 5), round(row["balance_s"], 5),
                       round(row["iteration_s"], 2), row["buckets"])
    emit(report)

    by_label = dict(rows)
    baseline = by_label["baseline (288 GPUs, BS 72, 8k)"]
    bigger_cluster = by_label["+Cluster 288->1152"]
    grouped = by_label["+Group 1->2 (1152 GPUs)"]

    # API cost is always negligible relative to the iteration time.
    for _, row in rows:
        assert row["cost_s"] + row["balance_s"] < 0.05 * row["iteration_s"]
    # Cost grows with batch size and cluster size ...
    assert by_label["+BS 72->144"]["balance_s"] > baseline["balance_s"]
    assert bigger_cluster["balance_s"] > baseline["balance_s"]
    # ... and group_size reins the cluster-size growth back in.
    assert grouped["balance_s"] < bigger_cluster["balance_s"]
    assert grouped["buckets"] < bigger_cluster["buckets"]
