"""Shared machinery for the CI benchmark-regression gate scripts.

Each gate script (``check_sched_regression.py``, ``check_elastic_regression.py``,
``check_plan_regression.py``) follows the same shape: the CI leg re-runs its
benchmark in smoke mode, which merges a fresh ``smoke`` section into the
committed ``BENCH_*.json`` artifact next to the committed full-sweep section;
the script then compares fresh numbers against committed ones and exits
non-zero past a threshold.  This module factors the shared pieces — argument
parsing, artifact/section loading with consistent error reporting, and the
ratio gate — so the scripts only encode *what* they compare.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path


def make_parser(description: str, default_artifact: str, default_threshold: float = 0.30) -> argparse.ArgumentParser:
    """Standard CLI of a regression gate: ``--artifact`` and ``--threshold``."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--artifact",
        type=Path,
        default=Path(default_artifact),
        help="merged benchmark artifact (committed sweep + fresh smoke rows)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=default_threshold,
        help="maximum tolerated fractional regression",
    )
    return parser


def load_sections(artifact: Path, committed_key: str, smoke_key: str = "smoke"):
    """Load (committed, fresh) sections; ``None`` for a missing one (reported).

    Returns a tuple; callers should exit non-zero when either side is None.
    """
    document = json.loads(artifact.read_text())
    committed = document.get(committed_key)
    fresh = document.get(smoke_key)
    if not committed:
        print(f"no committed {committed_key} section — nothing to compare")
    if not fresh:
        print(f"no fresh {smoke_key} section — run the benchmark in smoke mode first")
    return committed, fresh


def gate_ratio(label: str, fresh: float, reference: float, threshold: float) -> bool:
    """Print and gate ``fresh`` against ``reference``: ok iff within threshold.

    The gate passes when ``fresh >= (1 - threshold) * reference`` (higher is
    better for every gated metric in this suite).
    """
    ratio = fresh / reference if reference > 0 else float("inf")
    ok = ratio >= 1.0 - threshold
    status = "ok" if ok else "REGRESSION"
    print(f"{label}: fresh {fresh:,.1f} vs committed {reference:,.1f} (x{ratio:.2f}) — {status}")
    return ok
