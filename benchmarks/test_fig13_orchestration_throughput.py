"""Fig. 13 — end-to-end orchestration throughput across models and contexts.

For each (encoder, backbone, dataset, context length) combination the paper
compares three configurations: Baseline (no scheduling), Backbone balance
(inter-microbatch balancing on the LLM backbone) and Hybrid balance (encoder
images balanced world-wide plus the backbone balance).  Expected shape:
hybrid >= backbone >= baseline throughput, with larger gains at longer
contexts and for larger encoders.
"""

from __future__ import annotations

import os
from dataclasses import replace

import numpy as np
import pytest

from repro.core.framework import MegaScaleData, TrainingJobSpec
from repro.core.place_tree import ClientPlaceTree
from repro.core.strategies import StrategyConfig, make_strategy
from repro.metrics.report import MetricReport
from repro.parallelism.mesh import DeviceMesh
from repro.training.models import VLMConfig, get_model
from repro.training.simulator import TrainingSimulator

from .conftest import emit, sample_batch, write_bench_json

MESH = DeviceMesh(pp=2, dp=4, cp=1, tp=2, gpus_per_node=16)
NUM_MICROBATCHES = 4
SAMPLES_PER_DP = 16
STRATEGIES = ("vanilla", "backbone_balance", "hybrid")


def _clip_context(samples, context_length):
    clipped = []
    for sample in samples:
        image = min(sample.image_tokens, int(context_length * 0.85))
        text = min(sample.text_tokens, context_length - image)
        clipped.append(sample.with_updates(image_tokens=image, text_tokens=max(1, text)))
    return clipped


def _throughput(strategy_name, samples, model):
    tree = ClientPlaceTree(MESH)
    config = StrategyConfig(num_microbatches=NUM_MICROBATCHES)
    strategy = make_strategy(strategy_name, config)
    buffer_infos = {"all": samples}
    plan = strategy(buffer_infos, tree, step=0, seed=0)

    backbone_assignments = []
    for bucket in range(plan.module.num_buckets):
        bucket_row = [list(a.samples) for a in plan.module.bucket_assignments(bucket)]
        while len(bucket_row) < NUM_MICROBATCHES:
            bucket_row.append([])
        backbone_assignments.append(bucket_row)

    encoder_assignments = None
    if "encoder" in plan.subplan:
        encoder_plan = plan.subplan["encoder"].module
        encoder_assignments = []
        for bucket in range(encoder_plan.num_buckets):
            row = [list(a.samples) for a in encoder_plan.bucket_assignments(bucket)]
            while len(row) < NUM_MICROBATCHES:
                row.append([])
            encoder_assignments.append(row)

    simulator = TrainingSimulator(model, MESH)
    result = simulator.simulate_iteration(backbone_assignments, encoder_assignments)
    return result.throughput_tokens_per_s


def _sweep(catalog, filesystem, combos):
    rows = []
    for encoder_name, backbone_name, context in combos:
        model = VLMConfig(encoder=get_model(encoder_name), backbone=get_model(backbone_name))
        samples = _clip_context(
            sample_batch(catalog, filesystem, SAMPLES_PER_DP * MESH.size("DP"), seed=13), context
        )
        throughputs = {name: _throughput(name, samples, model) for name in STRATEGIES}
        rows.append(
            {
                "encoder": encoder_name,
                "backbone": backbone_name,
                "context": context,
                **throughputs,
            }
        )
    return rows


def test_fig13_orchestration_throughput(benchmark, navit_catalog, filesystem):
    combos = [
        ("ViT-1B", "Llama-12B", 4096),
        ("ViT-1B", "Llama-12B", 8192),
        ("ViT-2B", "Llama-12B", 4096),
        ("ViT-2B", "Llama-12B", 8192),
        ("ViT-1B", "tMoE-25B", 8192),
        ("ViT-2B", "Mixtral-8x7B", 16384),
    ]
    rows = benchmark(_sweep, navit_catalog, filesystem, combos)

    report = MetricReport(
        title="Fig. 13 - throughput (tokens/s) by strategy",
        columns=["encoder", "backbone", "ctx", "baseline", "backbone balance", "hybrid",
                 "hybrid speedup"],
    )
    for row in rows:
        report.add_row(
            row["encoder"],
            row["backbone"],
            row["context"],
            round(row["vanilla"]),
            round(row["backbone_balance"]),
            round(row["hybrid"]),
            round(row["hybrid"] / row["vanilla"], 2),
        )
    emit(report)
    write_bench_json("fig13", "strategy_throughput", rows)

    speedups_backbone = [row["backbone_balance"] / row["vanilla"] for row in rows]
    speedups_hybrid = [row["hybrid"] / row["vanilla"] for row in rows]
    # Balancing always helps on average, and hybrid does not trail backbone-only.
    assert np.mean(speedups_backbone) > 1.05
    assert np.mean(speedups_hybrid) >= np.mean(speedups_backbone) * 0.95
    assert max(speedups_hybrid) > 1.2

    # Larger context lengths amplify the gains (4k vs 8k for ViT-1B + Llama).
    small_ctx = next(r for r in rows if r["context"] == 4096 and r["encoder"] == "ViT-1B")
    large_ctx = next(r for r in rows if r["context"] == 8192 and r["encoder"] == "ViT-1B" and r["backbone"] == "Llama-12B")
    assert large_ctx["hybrid"] / large_ctx["vanilla"] >= small_ctx["hybrid"] / small_ctx["vanilla"] * 0.9


# -- asynchronous prefetching pipeline -----------------------------------------------

PREFETCH_JOB = TrainingJobSpec(
    pp=1, dp=2, cp=1, tp=2, backbone="Llama-12B", encoder="ViT-1B",
    samples_per_dp_step=8, num_microbatches=2, max_sequence_length=8192,
    num_sources=6, samples_per_source=48, strategy="hybrid", seed=15,
)
PREFETCH_STEPS = 4


def _train_with_depth(depth):
    system = MegaScaleData.deploy(replace(PREFETCH_JOB, prefetch_depth=depth))
    try:
        return system.run_training(num_steps=PREFETCH_STEPS)
    finally:
        system.shutdown()


def test_fig13_prefetch_pipeline_throughput(benchmark):
    """End-to-end throughput of the same job with and without prefetching.

    The synchronous pull workflow (depth 0) leaves the full data-preparation
    latency on the iteration critical path; with ``prefetch_depth>=1`` the
    pipeline hides it behind the previous steps' compute, so throughput
    improves and the overlap metric reports hidden data time.
    """
    summaries = benchmark(lambda: {depth: _train_with_depth(depth) for depth in (0, 1, 2)})

    report = MetricReport(
        title="Fig. 13 (ext) - prefetch pipeline throughput",
        columns=["prefetch depth", "tokens/s", "avg iter (s)", "hidden data (s)",
                 "exposed data (s)", "hidden frac"],
    )
    for depth, summary in sorted(summaries.items()):
        report.add_row(
            depth,
            round(summary["throughput_tokens_per_s"]),
            round(summary["avg_iteration_time_s"], 3),
            round(summary["hidden_data_time_s"], 3),
            round(summary["exposed_data_time_s"], 3),
            round(summary["hidden_data_fraction"], 3),
        )
    emit(report)
    write_bench_json(
        "fig13",
        "prefetch_pipeline",
        {f"depth_{depth}": summary for depth, summary in summaries.items()},
    )

    sync, depth1, depth2 = summaries[0], summaries[1], summaries[2]
    # Prefetching strictly improves throughput on the same job spec...
    assert depth1["throughput_tokens_per_s"] > sync["throughput_tokens_per_s"]
    assert depth2["throughput_tokens_per_s"] > sync["throughput_tokens_per_s"]
    # ...because data time moved off the critical path.
    assert sync["hidden_data_time_s"] == 0.0
    assert depth1["hidden_data_time_s"] > 0.0
    assert depth2["hidden_data_time_s"] > 0.0
    assert depth1["exposed_data_time_s"] < sync["exposed_data_time_s"]
    # A deeper pipeline never hides less than a shallower one.
    assert depth2["hidden_data_time_s"] >= depth1["hidden_data_time_s"] * 0.999


def test_fig13_prefetch_depth_matrix_smoke(benchmark):
    """One-depth smoke pass for the CI prefetch matrix.

    ``BENCH_PREFETCH_DEPTH`` (set by the workflow matrix leg) selects a
    single depth; locally, all three run.  Each leg writes its own section
    of the BENCH_fig13.json artifact, which the workflow uploads so the perf
    trajectory is tracked across PRs.
    """
    depth_env = os.environ.get("BENCH_PREFETCH_DEPTH")
    depths = [int(depth_env)] if depth_env else [0, 1, 2]
    summaries = benchmark(lambda: {depth: _train_with_depth(depth) for depth in depths})

    report = MetricReport(
        title="Fig. 13 (smoke) - prefetch depth matrix leg",
        columns=["prefetch depth", "tokens/s", "hidden (s)", "stall (s)", "virtual wall (s)"],
    )
    for depth, summary in sorted(summaries.items()):
        report.add_row(
            depth,
            round(summary["throughput_tokens_per_s"]),
            round(summary["hidden_data_time_s"], 3),
            round(summary["data_stall_time_s"], 3),
            round(summary["virtual_wall_time_s"], 3),
        )
        write_bench_json("fig13", f"prefetch_depth_{depth}", summary)
    emit(report)

    for summary in summaries.values():
        assert summary["throughput_tokens_per_s"] > 0.0
        assert summary["virtual_wall_time_s"] > 0.0
        # The co-simulation's books balance: hidden + exposed == total fetch.
        fetch_total = summary["steps"] * summary["avg_fetch_latency_s"]
        assert summary["hidden_data_time_s"] + summary["exposed_data_time_s"] == pytest.approx(
            fetch_total
        )
