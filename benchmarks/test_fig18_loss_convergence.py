"""Fig. 18 — impact of the balancer on training-loss convergence.

The balancer only moves samples between microbatches (inter-microbatch
balancing, no intra-microbatch reordering of the global batch), so without
context parallelism the loss curve should track the unbalanced baseline almost
exactly; with CP enabled the modified sequence partitioning adds small,
bounded numerical fluctuations while convergence is preserved.
"""

from __future__ import annotations

import numpy as np

from repro.core.balancing import WeightedItem, balance_items
from repro.metrics.report import MetricReport
from repro.training.convergence import ConvergenceSimulator, max_divergence

from .conftest import emit, sample_batch

STEPS = 50
SAMPLES_PER_STEP = 32
NUM_MICROBATCHES = 4


def _build_step_batches(catalog, filesystem, balanced):
    batches = []
    for step in range(STEPS):
        samples = sample_batch(catalog, filesystem, SAMPLES_PER_STEP, seed=100 + step)
        if balanced:
            items = [WeightedItem(key=s, cost=float(s.total_tokens) ** 2) for s in samples]
            result = balance_items(items, NUM_MICROBATCHES, "greedy")
            ordered = [item.key for bin_ in result.bins for item in bin_]
        else:
            ordered = samples
        batches.append(ordered)
    return batches


def _loss_curves(catalog, filesystem):
    curves = {}
    for cp in (False, True):
        for balanced in (False, True):
            batches = _build_step_batches(catalog, filesystem, balanced)
            sim = ConvergenceSimulator(context_parallel=cp, seed=18)
            curves[(cp, balanced)] = sim.run(batches)
    return curves


def test_fig18_loss_convergence(benchmark, coyo_catalog, filesystem):
    curves = benchmark(_loss_curves, coyo_catalog, filesystem)

    report = MetricReport(
        title="Fig. 18 - training loss with / without the balancer",
        columns=["configuration", "initial loss", "final loss", "max |delta| vs unbalanced"],
    )
    for cp in (False, True):
        baseline = curves[(cp, False)]
        balanced = curves[(cp, True)]
        label = "with CP" if cp else "without CP"
        report.add_row(
            f"balance=False ({label})", round(baseline[0], 3), round(baseline[-1], 3), 0.0
        )
        report.add_row(
            f"balance=True ({label})",
            round(balanced[0], 3),
            round(balanced[-1], 3),
            round(max_divergence(baseline, balanced), 4),
        )
    emit(report)

    # Without CP: the balanced loss tightly tracks the baseline (the global
    # batch content per step is identical; only microbatch membership moves).
    no_cp_divergence = max_divergence(curves[(False, False)], curves[(False, True)])
    assert no_cp_divergence < 0.05
    # With CP: small fluctuations appear but stay bounded.
    cp_divergence = max_divergence(curves[(True, False)], curves[(True, True)])
    assert cp_divergence < 0.2
    # Convergence is preserved in every configuration.
    for series in curves.values():
        assert series[-1] < series[0]
        assert np.mean(series[-5:]) < np.mean(series[:5])
