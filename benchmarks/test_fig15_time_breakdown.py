"""Fig. 15 — component time breakdown as the job scales.

Deploys the full actor-based data plane and reports the per-step latency of
each component (Planner buffer gather / plan compute / plan broadcast, Source
Loader preparation, Data Constructor collation) while scaling the number of
sources, the context length, the batch size and the cluster size.  The shape
to reproduce: the total data-pipeline overhead stays far below the training
iteration time in every configuration, and grows gracefully with scale.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.framework import MegaScaleData, TrainingJobSpec, fetch_bound_gpu_spec
from repro.metrics.report import MetricReport

from .conftest import emit, write_bench_json

BASE = TrainingJobSpec(
    pp=1, dp=2, cp=1, tp=2, backbone="Llama-12B", encoder="ViT-1B",
    samples_per_dp_step=8, num_microbatches=2, max_sequence_length=8192,
    num_sources=6, samples_per_source=48, strategy="hybrid", seed=15,
)

VARIANTS = [
    ("baseline", BASE),
    ("sources x2", replace(BASE, num_sources=12, samples_per_source=24)),
    ("context x4", replace(BASE, max_sequence_length=32768)),
    ("batch x2", replace(BASE, samples_per_dp_step=16)),
    ("gpus x2", replace(BASE, dp=4)),
]


def _measure(job):
    system = MegaScaleData.deploy(job)
    result = system.run_step(simulate=True)
    timings = result.plan_timings
    row = {
        "buffer_gather_s": timings.buffer_gather_s,
        "compute_plan_s": timings.compute_plan_s,
        "broadcast_plan_s": timings.broadcast_plan_s,
        "source_loader_s": result.loader_wall_clock_s,
        "data_constructor_s": result.constructor_collate_s,
        "total_pipeline_s": result.data_fetch_latency_s,
        "iteration_s": result.iteration.iteration_time_s,
    }
    system.shutdown()
    return row


def test_fig15_time_breakdown(benchmark):
    # Both assembly twins are measured: their *virtual* component timings
    # must coincide exactly (the columnar path's real wall-clock win is
    # fig24's subject, not the simulated clock's).
    by_mode = benchmark(
        lambda: {
            assembly: [
                (name, _measure(replace(job, assembly=assembly)))
                for name, job in VARIANTS
            ]
            for assembly in ("legacy", "columnar")
        }
    )
    rows = by_mode["columnar"]

    report = MetricReport(
        title="Fig. 15 - per-step component breakdown vs scaling dimension",
        columns=["variant", "gather (ms)", "plan (ms)", "broadcast (ms)", "loader (ms)",
                 "constructor (ms)", "pipeline total (s)", "iteration (s)"],
    )
    for name, row in rows:
        report.add_row(
            name,
            round(1e3 * row["buffer_gather_s"], 2),
            round(1e3 * row["compute_plan_s"], 2),
            round(1e3 * row["broadcast_plan_s"], 2),
            round(1e3 * row["source_loader_s"], 2),
            round(1e3 * row["data_constructor_s"], 2),
            round(row["total_pipeline_s"], 3),
            round(row["iteration_s"], 2),
        )
    emit(report)
    write_bench_json(
        "fig15",
        "component_breakdown",
        {mode: dict(mode_rows) for mode, mode_rows in by_mode.items()},
    )

    # Twin discipline: identical virtual timings, component by component.
    legacy_by_name = dict(by_mode["legacy"])
    for name, row in rows:
        for key, value in row.items():
            assert value == pytest.approx(legacy_by_name[name][key], rel=1e-9, abs=1e-12)

    by_name = dict(rows)
    # The data pipeline overhead is always hidden behind the iteration time.
    for name, row in rows:
        assert row["total_pipeline_s"] < row["iteration_s"]
    # More sources cost more gather time, but only modestly.
    assert by_name["sources x2"]["buffer_gather_s"] >= by_name["baseline"]["buffer_gather_s"]
    assert by_name["sources x2"]["buffer_gather_s"] < 10 * by_name["baseline"]["buffer_gather_s"]
    # Larger batches increase planning/collation work, and training time scales
    # commensurately so the overhead remains masked.
    assert by_name["batch x2"]["compute_plan_s"] >= by_name["baseline"]["compute_plan_s"] * 0.9
    assert by_name["batch x2"]["iteration_s"] > by_name["baseline"]["iteration_s"]


def test_fig15_prefetch_overlap_breakdown(benchmark):
    """Per-step exposed vs hidden data time once the prefetch pipeline warms up."""

    def _run():
        system = MegaScaleData.deploy(replace(BASE, prefetch_depth=2))
        try:
            results = [system.run_step(simulate=True) for _ in range(4)]
            return [
                {
                    "step": result.step,
                    "fetch_s": result.data_fetch_latency_s,
                    "hidden_s": result.hidden_fetch_s,
                    "exposed_s": result.exposed_fetch_s,
                    "iteration_s": result.iteration.iteration_time_s,
                }
                for result in results
            ], system.overlap.hidden_fraction()
        finally:
            system.shutdown()

    rows, hidden_fraction = benchmark(_run)

    report = MetricReport(
        title="Fig. 15 (ext) - prefetch overlap per step",
        columns=["step", "fetch (ms)", "hidden (ms)", "exposed (ms)", "iteration (s)"],
    )
    for row in rows:
        report.add_row(
            row["step"],
            round(1e3 * row["fetch_s"], 2),
            round(1e3 * row["hidden_s"], 2),
            round(1e3 * row["exposed_s"], 2),
            round(row["iteration_s"], 2),
        )
    emit(report)

    # The first step has no compute window to hide behind; every later step
    # overlaps its (small) fetch entirely.
    assert rows[0]["hidden_s"] == 0.0
    for row in rows[1:]:
        assert row["hidden_s"] > 0.0
        assert row["exposed_s"] < row["fetch_s"]
    assert hidden_fraction > 0.5
    write_bench_json(
        "fig15", "prefetch_overlap", {"steps": rows, "hidden_fraction": hidden_fraction}
    )


def test_fig15_fetch_bound_depth_scaling(benchmark):
    """A fetch-bound job: one compute window cannot hide the fetch chain.

    The probe step measures the default compute/fetch ratio, then the GPU
    spec is scaled so one iteration's compute window is ~0.42x the fetch
    chain.  On that job the virtual-clock co-simulation shows strictly more
    hidden data time at ``prefetch_depth=2`` than at ``prefetch_depth=1``
    (and the ledger's books reconcile with the virtual wall clock) — the
    deep-pipeline fidelity the heuristic overlap credit could not express.
    """

    # Calibrate once, outside the benchmarked closure, so the measured time
    # covers only the depth-scaling runs (not the probe deploy + step).
    gpu = fetch_bound_gpu_spec(BASE)

    def _run():
        summaries = {}
        reconciliation = {}
        for depth in (1, 2):
            system = MegaScaleData.deploy(replace(BASE, prefetch_depth=depth, gpu_spec=gpu))
            try:
                summaries[depth] = system.run_training(num_steps=6)
                ledger = system.overlap
                compute_total = sum(
                    r.iteration.iteration_time_s - r.iteration.exposed_fetch_time_s
                    for r in system.history()
                )
                reconciliation[depth] = {
                    "fetch_total_s": ledger.fetch_total_s(),
                    "hidden_plus_exposed_s": ledger.hidden_total_s() + ledger.exposed_total_s(),
                    "stall_total_s": ledger.stall_total_s(),
                    "compute_total_s": compute_total,
                    "rpc_slack_s": 6 * system.system.rpc_latency_s,
                }
            finally:
                system.shutdown()
        return summaries, reconciliation

    summaries, reconciliation = benchmark(_run)

    report = MetricReport(
        title="Fig. 15 (ext) - fetch-bound job, hidden time vs prefetch depth",
        columns=["prefetch depth", "hidden (s)", "exposed (s)", "stall (s)", "virtual wall (s)"],
    )
    for depth, summary in sorted(summaries.items()):
        report.add_row(
            depth,
            round(summary["hidden_data_time_s"], 3),
            round(summary["exposed_data_time_s"], 3),
            round(summary["data_stall_time_s"], 3),
            round(summary["virtual_wall_time_s"], 3),
        )
    emit(report)
    write_bench_json(
        "fig15",
        "fetch_bound_depth_scaling",
        {f"depth_{depth}": summary for depth, summary in summaries.items()},
    )

    depth1, depth2 = summaries[1], summaries[2]
    # The acceptance property: a deeper pipeline hides strictly more of a
    # fetch chain that one iteration cannot cover...
    assert depth2["hidden_data_time_s"] > depth1["hidden_data_time_s"]
    assert depth2["exposed_data_time_s"] < depth1["exposed_data_time_s"]
    # ...which shows up as real end-to-end time on the virtual clock.
    assert depth2["virtual_wall_time_s"] < depth1["virtual_wall_time_s"]
    # The ledger's books reconcile with the virtual-clock wall time.
    for depth, checks in reconciliation.items():
        assert checks["hidden_plus_exposed_s"] == pytest.approx(
            checks["fetch_total_s"], abs=1e-9
        )
        wall = summaries[depth]["virtual_wall_time_s"]
        assert wall == pytest.approx(
            checks["compute_total_s"] + checks["stall_total_s"] + checks["rpc_slack_s"],
            rel=1e-9,
        )
