"""Aggregate every ``BENCH_*.json`` artifact into one trajectory table.

The repo commits one JSON artifact per benchmarked figure; each PR that
re-runs a benchmark refreshes its section, so the artifacts *are* the perf
trajectory of the codebase.  This script flattens them into a single table —
one row per (artifact, section, headline metric) — so CI prints the whole
trajectory at a glance and a reviewer can spot a suspicious number without
opening eight JSON files.

Pure stdlib; runs standalone: ``python benchmarks/summarize_bench.py``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Headline metrics, in display priority order.  A section contributes every
#: key it has from this list, then (up to the per-section cap) its remaining
#: scalar keys alphabetically — so known quantities line up across sections
#: while novel artifacts still surface something.
PRIORITY = (
    "throughput_tokens_per_s",
    "stall_reduction",
    "wall_speedup",
    "hidden_fraction",
    "hidden_data_fraction",
    "data_stall_time_s",
    "virtual_wall_time_s",
    "events_per_actor",
    "steps",
)

MAX_METRICS_PER_SECTION = 6


def scalar_metrics(payload: dict) -> dict[str, float]:
    """Top-level numeric (non-bool) values of one section, priority-ordered."""
    scalars = {
        key: float(value)
        for key, value in payload.items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }
    ordered: dict[str, float] = {}
    for key in PRIORITY:
        if key in scalars:
            ordered[key] = scalars.pop(key)
    for key in sorted(scalars):
        if len(ordered) >= MAX_METRICS_PER_SECTION:
            break
        ordered[key] = scalars[key]
    return ordered


def section_note(payload: dict) -> str:
    """A compact shape hint for the non-scalar payload parts."""
    notes = []
    rows = payload.get("rows")
    if isinstance(rows, list):
        notes.append(f"{len(rows)} rows")
    reconciliation = payload.get("reconciliation")
    if isinstance(reconciliation, dict):
        state = "ok" if reconciliation.get("within_tolerance") else "OFF"
        notes.append(f"reconcile:{state}")
    return ", ".join(notes)


def format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return f"{int(value):,}"
    if abs(value) >= 1000:
        return f"{value:,.1f}"
    return f"{value:.4g}"


def summarize(root: Path) -> list[tuple[str, str, str, str]]:
    rows: list[tuple[str, str, str, str]] = []
    for path in sorted(root.glob("BENCH_*.json")):
        try:
            document = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            rows.append((path.name, "-", "unreadable", str(exc)))
            continue
        for section in sorted(document):
            payload = document[section]
            if not isinstance(payload, dict):
                rows.append((path.name, section, "entries", str(len(payload))))
                continue
            metrics = scalar_metrics(payload)
            note = section_note(payload)
            if not metrics:
                rows.append((path.name, section, "-", note or "-"))
                continue
            first = True
            for key, value in metrics.items():
                rows.append(
                    (
                        path.name if first else "",
                        section if first else "",
                        key,
                        format_value(value) + (f"  [{note}]" if first and note else ""),
                    )
                )
                first = False
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="directory holding the BENCH_*.json artifacts (default: repo root)",
    )
    args = parser.parse_args(argv)

    rows = summarize(args.root)
    if not rows:
        print(f"no BENCH_*.json artifacts under {args.root}")
        return 1

    headers = ("artifact", "section", "metric", "value")
    widths = [
        max(len(headers[i]), max(len(row[i]) for row in rows)) for i in range(4)
    ]
    line = "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    print(line)
    print("  ".join("-" * width for width in widths))
    for row in rows:
        print("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
