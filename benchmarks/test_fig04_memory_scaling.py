"""Fig. 4 — orthogonal memory scaling by source count and worker count.

Reproduces the observation that per-source file-access state replicated in
every worker dominates preprocessing memory (>70% with many sources) and that
the footprint grows along two orthogonal axes: number of sources and number
of workers.
"""

from __future__ import annotations

from repro.baselines.torch_loader import TorchColocatedLoader
from repro.data.synthetic import build_source_catalog, navit_like_spec
from repro.metrics.report import MetricReport
from repro.parallelism.mesh import DeviceMesh
from repro.storage.filesystem import SimulatedFileSystem
from repro.utils.units import bytes_to_gib

from .conftest import emit

MESH = DeviceMesh(pp=1, dp=4, cp=1, tp=1, gpus_per_node=8)


class _FixedWorkerLoader(TorchColocatedLoader):
    """Torch-style loader with a pinned worker count (no autoscaling)."""

    def __init__(self, *args, workers: int, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._workers = workers

    def workers_per_client(self) -> int:
        return self._workers


def _memory_grid(source_counts, worker_counts):
    grid = {}
    for num_sources in source_counts:
        filesystem = SimulatedFileSystem()
        catalog = build_source_catalog(
            navit_like_spec(num_sources=num_sources, samples_per_source=8, seed=1), filesystem
        )
        for workers in worker_counts:
            loader = _FixedWorkerLoader(
                catalog, MESH, samples_per_dp_step=32, num_microbatches=4, workers=workers
            )
            breakdown = loader.memory_breakdown()
            grid[(num_sources, workers)] = breakdown
    return grid


def test_fig4_orthogonal_memory_scaling(benchmark):
    source_counts = (8, 32, 128)
    worker_counts = (1, 2, 4)
    grid = benchmark(_memory_grid, source_counts, worker_counts)

    report = MetricReport(
        title="Fig. 4 - loader memory vs (sources, workers), torch-style colocation",
        columns=["sources", "workers", "total GiB", "source-state share"],
    )
    for (num_sources, workers), breakdown in sorted(grid.items()):
        total = sum(breakdown.values())
        report.add_row(
            num_sources,
            workers,
            round(bytes_to_gib(total), 2),
            round(breakdown["source_state"] / total, 3),
        )
    emit(report)

    def total(num_sources, workers):
        return sum(grid[(num_sources, workers)].values())

    # Memory grows along the source axis and the worker axis independently.
    assert total(128, 2) > 2.0 * total(8, 2)
    assert total(32, 4) > 1.5 * total(32, 1)
    # With many sources, file-access state dominates (>70%, Fig. 4 pie).
    share = grid[(128, 4)]["source_state"] / total(128, 4)
    assert share > 0.7
    # With few sources the share is materially smaller.
    small_share = grid[(8, 1)]["source_state"] / total(8, 1)
    assert small_share < share
