"""Fig. 20 (scheduler leg) — event-engine dispatch throughput vs actor count.

The paper's Fig. 20 sweep scales the data plane to thousands of loaders; what
throttled our simulator in that regime was not the modelled system but the
*simulator's own dispatcher*: the PR-2 engine popped every event with a
linear scan over all actor queues, O(E·A) for E events over A actors.  This
benchmark drives a synthetic fetch-bound workload — per-loader causal chains
of poll/fetch tickets on multi-lane actors racing a trainer consume stream —
across {64, 256, 1024} loader actors under both dispatchers and measures raw
dispatch throughput (events/sec of ``submit + drain``).

The indexed dispatcher must deliver **>= 5x** the linear-scan throughput at
1024 actors (it is O(E·log A); the gap widens with A).  Both dispatchers are
asserted to land on the identical final virtual clock — same schedule, only
cheaper dispatch.  Results are written to ``BENCH_fig20_sched.json``; the CI
``scheduler-bench`` leg re-runs the small actor count in smoke mode and
fails on a >30% events/sec regression against the committed artifact.

Env knobs: ``BENCH_SCHED_SMOKE=1`` restricts the sweep to the smallest actor
count (CI smoke) and writes the ``smoke`` section of the artifact.
"""

from __future__ import annotations

import os
import time

from repro.actors.actor import Actor
from repro.actors.node import DEFAULT_ACCELERATOR_RESOURCES
from repro.actors.runtime import ActorSystem, ClusterSpec
from repro.metrics.report import MetricReport
from repro.metrics.timeline import Timeline

from .conftest import emit, write_bench_json

ACTOR_COUNTS = (64, 256, 1024)
SMOKE_ACTOR_COUNTS = (64,)
EVENTS_PER_ACTOR = 4
#: Virtual duration of one synthetic fetch ticket.
TICKET_SECONDS = 0.01
#: Required indexed-over-linear dispatch speedup at the largest actor count.
REQUIRED_SPEEDUP = 5.0


class SyntheticLoader(Actor):
    """Minimal loader stand-in: the benchmark measures dispatch, not work."""

    role = "source_loader"

    def serve(self, ticket: int) -> int:
        return ticket


class SyntheticTrainer(Actor):
    role = "trainer"

    def consume(self, step: int) -> int:
        return step


def _smoke_mode() -> bool:
    return os.environ.get("BENCH_SCHED_SMOKE", "0") == "1"


def _drive(dispatcher: str, num_actors: int) -> dict[str, float]:
    """Submit and drain one synthetic fetch-bound schedule; time the engine."""
    per_node = int(DEFAULT_ACCELERATOR_RESOURCES.cpu_cores / 0.25) - 8
    cluster = ClusterSpec(accelerator_nodes=1 + num_actors // per_node, cpu_pods=1)
    system = ActorSystem(cluster, dispatcher=dispatcher, call_log_limit=256)
    # Bounded timeline keeps per-event telemetry allocation flat so the
    # measurement isolates dispatch cost (identical for both dispatchers).
    system.timeline = Timeline(max_events=256)

    handles = [
        system.create_actor(
            SyntheticLoader,
            name=f"loader-{index}",
            cpu_cores=0.25,
            memory_bytes=1024,
            concurrency=2,
        )
        for index in range(num_actors)
    ]
    trainer = system.create_actor(
        SyntheticTrainer, name="trainer", cpu_cores=0.25, memory_bytes=1024
    )

    begin = time.perf_counter()
    submitted = 0
    for round_index in range(EVENTS_PER_ACTOR):
        # Per-loader causal chains: each round's ticket may not start before
        # the previous round's completion horizon, staggered per loader so
        # queue heads disagree and the dispatcher has real sorting to do.
        round_floor = round_index * TICKET_SECONDS
        for index, handle in enumerate(handles):
            handle.submit_timed(
                "serve",
                round_index,
                duration_s=TICKET_SECONDS,
                earliest_start_s=round_floor + (index % 7) * 1e-4,
                step_tag=round_index,
            )
            submitted += 1
        trainer.submit_timed(
            "consume", round_index, duration_s=TICKET_SECONDS * 2,
            earliest_start_s=round_floor, step_tag=round_index,
        )
        submitted += 1
    peak_pending = submitted
    executed = system.drain()
    elapsed = time.perf_counter() - begin

    assert executed == submitted
    return {
        "actors": num_actors,
        "events": executed,
        "peak_pending": peak_pending,
        "wall_s": elapsed,
        "events_per_s": executed / elapsed if elapsed > 0 else float("inf"),
        "final_clock_s": system.clock_s,
    }


def _sweep(actor_counts) -> list[dict[str, object]]:
    rows = []
    for num_actors in actor_counts:
        linear = _drive("linear", num_actors)
        indexed = _drive("indexed", num_actors)
        # Same schedule on both dispatchers: only the dispatch cost differs.
        assert indexed["final_clock_s"] == linear["final_clock_s"]
        assert indexed["events"] == linear["events"]
        rows.append(
            {
                "actors": num_actors,
                "events": indexed["events"],
                "peak_pending": indexed["peak_pending"],
                "linear_wall_s": linear["wall_s"],
                "indexed_wall_s": indexed["wall_s"],
                "linear_events_per_s": linear["events_per_s"],
                "indexed_events_per_s": indexed["events_per_s"],
                "speedup": indexed["events_per_s"] / linear["events_per_s"],
            }
        )
    return rows


def test_fig20_scheduler_scalability(benchmark):
    smoke = _smoke_mode()
    actor_counts = SMOKE_ACTOR_COUNTS if smoke else ACTOR_COUNTS
    rows = benchmark(_sweep, actor_counts)

    report = MetricReport(
        title="Fig. 20 (scheduler) - dispatch throughput vs loader actor count",
        columns=[
            "actors", "events", "linear ev/s", "indexed ev/s", "speedup",
        ],
    )
    for row in rows:
        report.add_row(
            row["actors"],
            row["events"],
            round(row["linear_events_per_s"], 1),
            round(row["indexed_events_per_s"], 1),
            round(row["speedup"], 2),
        )
    emit(report)

    write_bench_json(
        "fig20_sched",
        "smoke" if smoke else "scheduler_scalability",
        {"rows": rows, "events_per_actor": EVENTS_PER_ACTOR},
    )

    by_actors = {row["actors"]: row for row in rows}
    if not smoke:
        # The tentpole claim: >= 5x dispatch throughput at 1024 actors.
        assert by_actors[1024]["speedup"] >= REQUIRED_SPEEDUP
        # The gap must widen with scale (O(E log A) vs O(E A)).
        assert by_actors[1024]["speedup"] > by_actors[64]["speedup"]
