"""CI gate: fail when columnar collation throughput regresses vs the artifact.

The ``assembly-bench`` CI leg runs ``test_fig24_batch_assembly`` in smoke
mode (``BENCH_ASSEMBLY_SMOKE=1``), which merges a fresh ``smoke`` section
into ``BENCH_fig24_assembly.json`` next to the committed full-sweep
``assembly_sweep`` section.  This script compares the fresh smoke samples/sec
of the columnar fast path against the committed row at the same
(batch, source count) point and exits non-zero on a regression beyond the
threshold (default: 30%).  The same-run columnar-vs-legacy speedup is printed
as machine-independent context: a slow runner depresses both paths equally,
so a healthy speedup alongside a failed absolute check points at the runner,
not the code — while a collapsed speedup is a real regression even if
absolute numbers pass.
"""

from __future__ import annotations

import sys

from _regression import gate_ratio, load_sections, make_parser


def main(argv: list[str] | None = None) -> int:
    args = make_parser(__doc__, "BENCH_fig24_assembly.json").parse_args(argv)

    committed_section, fresh_section = load_sections(args.artifact, "assembly_sweep")
    if not committed_section or not fresh_section:
        return 1
    committed = {
        (row["batch"], row["sources"]): row
        for row in committed_section.get("rows", [])
    }
    fresh_rows = fresh_section.get("rows", [])
    if not committed:
        print("committed assembly_sweep section has no rows — nothing to compare")
        return 1
    if not fresh_rows:
        print("fresh smoke section has no rows — run the benchmark with BENCH_ASSEMBLY_SMOKE=1")
        return 1

    failures = 0
    for row in fresh_rows:
        point = (row["batch"], row["sources"])
        baseline = committed.get(point)
        if baseline is None:
            print(f"batch×sources={point}: no committed baseline row, skipping")
            continue
        ok = gate_ratio(
            f"batch={point[0]} sources={point[1]} columnar samples/s",
            row["columnar_samples_per_s"],
            baseline["columnar_samples_per_s"],
            args.threshold,
        )
        print(
            f"batch={point[0]} sources={point[1]}: same-run speedup "
            f"x{row['speedup']:.2f} (committed sweep x{baseline['speedup']:.2f})"
        )
        if not ok:
            failures += 1
        if row["speedup"] <= 1.0:
            print(
                f"batch={point[0]} sources={point[1]}: REGRESSION — the fast "
                "path is no faster than legacy in this run"
            )
            failures += 1

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
