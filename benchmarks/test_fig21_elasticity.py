"""Fig. 21 (ext): elastic loader fleet vs a frozen fleet on a bursty mixture.

A mixture burst concentrates demand on one source: its loader becomes the
bottleneck and the trainer stalls.  With the elastic fleet enabled the
AutoScaler's piggybacked ScalingPlan directives actually spawn mirror
loaders through the placement scheduler, splitting the hot source's demands
and cutting the exposed data stall; the frozen fleet (PR-2/PR-3 behaviour:
directives logged only) keeps paying it.  Batches are byte-identical either
way — elasticity moves timing, never data.

Writes ``BENCH_fig21_elastic.json``:

- the committed ``elastic_fleet`` section (full run), and
- a fresh ``smoke`` section when ``BENCH_ELASTIC_SMOKE=1`` (the CI
  ``elasticity-bench`` leg), gated by
  ``benchmarks/check_elastic_regression.py`` on the machine-independent
  same-run stall reduction.
"""

from __future__ import annotations

import os

from repro.core.framework import MegaScaleData, TrainingJobSpec
from repro.data.mixture import MixturePhase, MixtureSchedule
from repro.metrics.report import MetricReport

from .conftest import emit, write_bench_json

#: Smoke mode only selects which artifact section is written (the CI leg's
#: fresh rows vs the committed baseline); the workload itself is identical,
#: so the regression gate compares like with like.
SMOKE = os.environ.get("BENCH_ELASTIC_SMOKE") == "1"
NUM_STEPS = 14
BURST_STEP = 2


def bursty_mixture():
    """Uniform warmup, then a sustained burst on src000."""
    return MixtureSchedule.staged(
        [
            MixturePhase(0, {"navit_data/src000": 1 / 3, "navit_data/src001": 1 / 3,
                             "navit_data/src002": 1 / 3}),
            MixturePhase(BURST_STEP, {"navit_data/src000": 0.8,
                                      "navit_data/src001": 0.1,
                                      "navit_data/src002": 0.1}),
        ]
    )


_FETCH_BOUND_GPU = None


def make_job(elastic: bool, gpu_spec=None) -> TrainingJobSpec:
    return TrainingJobSpec(
        pp=1, dp=2, cp=1, tp=1, encoder=None, strategy="backbone_balance",
        samples_per_dp_step=8, num_microbatches=2, num_sources=3,
        samples_per_source=64, seed=5, prefetch_depth=2,
        mixture=bursty_mixture(), elastic_fleet=elastic, gpu_spec=gpu_spec,
    )


def fetch_bound_gpu():
    """A GPU calibrated so one compute window is ~40% of the fetch chain.

    On a compute-bound job prefetching hides the whole data plane and both
    fleets report zero stall; the paper's elasticity story is about the
    fetch-bound regime, where loader throughput is the binding constraint
    and scale-up directly moves the exposed stall.
    """
    global _FETCH_BOUND_GPU
    if _FETCH_BOUND_GPU is None:
        from repro.core.framework import fetch_bound_gpu_spec

        _FETCH_BOUND_GPU = fetch_bound_gpu_spec(make_job(False), compute_fraction=0.4)
    return _FETCH_BOUND_GPU


def run_mode(elastic: bool) -> dict:
    system = MegaScaleData.deploy(make_job(elastic, gpu_spec=fetch_bound_gpu()))
    scaler = system.planner_handle.instance().scaler
    scaler.consecutive_intervals = 2
    scaler.window = 3
    try:
        summary = system.run_training(num_steps=NUM_STEPS, simulate=True)
        stall_series = [
            {"step": step, "stall_s": stall, "fleet": fleet}
            for step, stall, fleet in system.trainer_handle.instance().stall_log
        ]
        return {
            "mode": "elastic" if elastic else "frozen",
            "steps": NUM_STEPS,
            "data_stall_time_s": summary["data_stall_time_s"],
            "exposed_data_time_s": summary["exposed_data_time_s"],
            "hidden_data_time_s": summary["hidden_data_time_s"],
            "virtual_wall_time_s": summary["virtual_wall_time_s"],
            "throughput_tokens_per_s": summary.get("throughput_tokens_per_s", 0.0),
            "fleet_spawns": summary["fleet_spawns"],
            "fleet_retires": summary["fleet_retires"],
            "peak_loader_actors": summary["peak_loader_actors"],
            "peak_node_cpu_utilization": summary["peak_node_cpu_utilization"],
            "mean_node_cpu_utilization": summary["mean_node_cpu_utilization"],
            "stall_series": stall_series,
        }
    finally:
        system.shutdown()


def test_fig21_elastic_fleet_cuts_exposed_stall(benchmark):
    """Scale-up under a burst cuts exposed data stall vs the frozen fleet."""
    rows = benchmark(lambda: [run_mode(elastic=False), run_mode(elastic=True)])
    frozen, elastic = rows

    report = MetricReport(
        title="Fig. 21 (ext) - elastic vs frozen loader fleet on a bursty mixture",
        columns=["fleet", "stall (s)", "exposed (s)", "virtual wall (s)",
                 "tokens/s", "spawns", "peak actors", "peak node cpu"],
    )
    for row in rows:
        report.add_row(
            row["mode"],
            round(row["data_stall_time_s"], 3),
            round(row["exposed_data_time_s"], 3),
            round(row["virtual_wall_time_s"], 3),
            round(row["throughput_tokens_per_s"], 1),
            int(row["fleet_spawns"]),
            int(row["peak_loader_actors"]),
            round(row["peak_node_cpu_utilization"], 4),
        )
    emit(report)

    stall_reduction = (
        frozen["data_stall_time_s"] / elastic["data_stall_time_s"]
        if elastic["data_stall_time_s"] > 0
        else float("inf")
    )
    payload = {
        "burst_step": BURST_STEP,
        "rows": rows,
        "stall_reduction": stall_reduction,
        "wall_speedup": frozen["virtual_wall_time_s"] / elastic["virtual_wall_time_s"],
    }
    write_bench_json("fig21_elastic", "smoke" if SMOKE else "elastic_fleet", payload)

    # The headline claim: scale-up genuinely happened and cut the stall.
    assert elastic["fleet_spawns"] >= 1
    assert frozen["fleet_spawns"] == 0
    assert elastic["data_stall_time_s"] < frozen["data_stall_time_s"]
    assert elastic["exposed_data_time_s"] < frozen["exposed_data_time_s"]
    # Elastic throughput is no worse than the frozen fleet's.
    assert elastic["throughput_tokens_per_s"] >= frozen["throughput_tokens_per_s"]
    assert elastic["virtual_wall_time_s"] < frozen["virtual_wall_time_s"]
    # The elastic fleet used strictly more placement (spawned mirrors)...
    assert elastic["peak_node_cpu_utilization"] > frozen["peak_node_cpu_utilization"]
    # ...and the stall series shows the burst being absorbed: the worst
    # post-scale-up stall is below the frozen fleet's worst stall.
    first_scaled = next(
        (entry["step"] for entry in elastic["stall_series"]
         if entry["fleet"] > elastic["stall_series"][0]["fleet"]),
        None,
    )
    assert first_scaled is not None
    frozen_worst = max(entry["stall_s"] for entry in frozen["stall_series"][first_scaled:])
    elastic_worst = max(entry["stall_s"] for entry in elastic["stall_series"][first_scaled:])
    assert elastic_worst < frozen_worst
