"""CI gate: fail when storm survivability or degraded-mode guarantees regress.

The ``chaos-bench`` CI leg runs ``test_fig27_chaos`` in smoke mode
(``BENCH_CHAOS_SMOKE=1``), which merges a fresh ``smoke`` section into
``BENCH_fig27_chaos.json`` next to the committed ``chaos`` section.  Unlike
the throughput gates, the survivability matrix is primarily *correctness*:
every backend x degraded-mode row must complete every step under the storm,
strict rows must stay byte-identical to their fault-free baseline, and every
row must stay quota-exact (renormalize repays the blackout debt
sample-exactly).  On the virtual backend the storm instants are
deterministic, so the gate additionally requires every fault class to have
actually fired and bounds the storm's wall-clock stretch both absolutely
(the artifact's ``stall_bound``) and relative to the committed run (the
ratio threshold, default 30%).
"""

from __future__ import annotations

import sys

from _regression import gate_ratio, load_sections, make_parser

FAULT_KINDS = {"node_crash", "straggler", "gcs_blip", "store_outage", "source_blackout"}


def main(argv: list[str] | None = None) -> int:
    args = make_parser(__doc__, "BENCH_fig27_chaos.json").parse_args(argv)

    committed_section, fresh_section = load_sections(args.artifact, "chaos")
    if not committed_section or not fresh_section:
        return 1
    committed = {
        (row["backend"], row["mode"]): row for row in committed_section.get("rows", [])
    }
    fresh_rows = fresh_section.get("rows", [])
    if not committed:
        print("committed chaos section has no rows — nothing to compare")
        return 1
    if not fresh_rows:
        print("fresh smoke section has no rows — run the benchmark with BENCH_CHAOS_SMOKE=1")
        return 1

    steps = fresh_section.get("steps", committed_section.get("steps"))
    stall_bound = fresh_section.get("stall_bound", committed_section.get("stall_bound", 2.0))

    failures = 0
    for row in fresh_rows:
        label = f"{row['backend']}/{row['mode']}"
        if row["steps_completed"] != steps:
            print(
                f"{label}: REGRESSION — completed {row['steps_completed']}/{steps} "
                "steps under the storm (lost steps)"
            )
            failures += 1
        if row["mode"] == "strict" and not row["byte_identical"]:
            print(f"{label}: REGRESSION — strict mode is no longer byte-identical")
            failures += 1
        if not row["quota_exact"]:
            print(f"{label}: REGRESSION — cumulative per-source quotas drifted")
            failures += 1
        if row["backend"] != "virtual":
            print(f"{label}: survived with faults fired {row['fired']}")
            continue
        missing = FAULT_KINDS - set(row["fired"])
        if missing:
            print(f"{label}: REGRESSION — fault kinds never fired: {sorted(missing)}")
            failures += 1
        if row["wall_ratio"] > stall_bound:
            print(
                f"{label}: REGRESSION — storm stretched the run "
                f"x{row['wall_ratio']:.3f}, past the stall bound x{stall_bound}"
            )
            failures += 1
        baseline = committed.get((row["backend"], row["mode"]))
        if baseline is None:
            print(f"{label}: no committed baseline row, skipping ratio gate")
            continue
        # gate_ratio treats larger as better; wall_ratio is a cost, so gate
        # its inverse (survival throughput under the storm).
        if not gate_ratio(
            f"{label} inverse storm stretch",
            1.0 / max(1e-9, row["wall_ratio"]),
            1.0 / max(1e-9, baseline["wall_ratio"]),
            args.threshold,
        ):
            failures += 1

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
