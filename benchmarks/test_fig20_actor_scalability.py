"""Fig. 20 — scalability of the actor model (Data Constructor vs direct transfer).

The paper trains a pure-text model and compares MegaScale-Data against a
direct-transfer baseline in which every trainer client connects straight to
the Source Loaders (bypassing the Data Constructor).  At 1k GPUs the two are
comparable; at 2k GPUs the baseline's fan-in connection load inflates its
fetch latency ~10x; at 4k GPUs it collapses while the constructor-mediated
path keeps scaling.
"""

from __future__ import annotations

from repro.metrics.report import MetricReport
from repro.parallelism.mesh import DeviceMesh

from .conftest import emit

SAMPLES_PER_DP = 32
NUM_SOURCES = 64
PER_SAMPLE_TRANSFER_S = 0.0004
CONNECTION_SETUP_S = 0.0005
#: Aggregate connection-handling capacity of the loader tier (concurrent
#: connections) before head-of-line blocking sets in.
LOADER_CONNECTION_CAPACITY = 200_000.0


def _direct_transfer_latency(world_size: int) -> float:
    """Every fetching client opens connections to every source loader."""
    connections = world_size * NUM_SOURCES
    utilization = connections / LOADER_CONNECTION_CAPACITY
    # Queueing blow-up as the loader tier saturates (M/M/1-style growth).
    if utilization >= 1.0:
        congestion = float("inf")
    else:
        congestion = 1.0 / (1.0 - utilization)
    per_client = NUM_SOURCES * CONNECTION_SETUP_S + SAMPLES_PER_DP * PER_SAMPLE_TRANSFER_S
    return per_client * congestion


def _constructor_latency(world_size: int, dp_size: int) -> float:
    """Clients fetch from their DP group's constructor; constructors fan in to loaders."""
    constructors = dp_size
    loader_connections = constructors * NUM_SOURCES
    utilization = min(0.9, loader_connections / LOADER_CONNECTION_CAPACITY)
    congestion = 1.0 / (1.0 - utilization)
    constructor_fan_out = world_size / constructors
    per_client = (
        CONNECTION_SETUP_S
        + SAMPLES_PER_DP * PER_SAMPLE_TRANSFER_S
        + 0.00002 * constructor_fan_out
    )
    return per_client * congestion


def _sweep():
    rows = []
    for gpus in (1024, 2048, 4096):
        mesh = DeviceMesh(pp=4, dp=gpus // 32, cp=1, tp=8, gpus_per_node=16)
        direct = _direct_transfer_latency(mesh.world_size)
        ours = _constructor_latency(mesh.world_size, mesh.size("DP"))
        rows.append({"gpus": gpus, "direct_s": direct, "megascale_s": ours})
    return rows


def test_fig20_actor_model_scalability(benchmark):
    rows = benchmark(_sweep)

    report = MetricReport(
        title="Fig. 20 - data fetch latency vs cluster size (pure-text model)",
        columns=["GPUs", "direct transfer (s)", "MegaScale-Data (s)", "ratio"],
    )
    for row in rows:
        ratio = row["direct_s"] / row["megascale_s"] if row["direct_s"] != float("inf") else float("inf")
        report.add_row(
            row["gpus"],
            "collapse" if row["direct_s"] == float("inf") else round(row["direct_s"], 3),
            round(row["megascale_s"], 3),
            "inf" if ratio == float("inf") else round(ratio, 1),
        )
    emit(report)

    by_gpus = {row["gpus"]: row for row in rows}
    # Comparable at 1k GPUs.
    assert by_gpus[1024]["direct_s"] < 10 * by_gpus[1024]["megascale_s"]
    # ~10x latency blow-up for the baseline at 2k GPUs.
    assert by_gpus[2048]["direct_s"] > 5 * by_gpus[2048]["megascale_s"]
    # Collapse (or effectively unbounded latency) at 4k GPUs, while the
    # constructor-mediated path keeps latency bounded and slowly growing.
    assert by_gpus[4096]["direct_s"] == float("inf") or by_gpus[4096]["direct_s"] > 50 * by_gpus[4096]["megascale_s"]
    assert by_gpus[4096]["megascale_s"] < 5 * by_gpus[1024]["megascale_s"]
