"""Fig. 24 — batch-assembly (collation) throughput vs batch size × source count.

PR 6 left the per-step data path object-bound: the legacy collator first-fits
every sample with a linear scan over all open bins — O(samples × bins) residual
checks per microbatch — and materialises RoPE position ids one Python list at
a time.  The columnar assembly path (``assembly="columnar"``) keeps prepared
samples as token-length *columns* end to end and collates with array kernels:
first-fit on a max tournament tree (O(samples · log bins)), positions from a
single int32 cumsum over a delta array, segment tables from one stable argsort.

This benchmark sweeps batch size × source count (sources shape the length
mixture: each source draws from its own band, so more sources = a wider,
more realistic token-length distribution) and measures raw collation
throughput (samples/sec) under both implementations over identical inputs.
In the same run, each sweep point also drives a real ``DataConstructor`` in
both assembly modes over the same plan and asserts the per-rank
``RankDelivery`` objects are **byte-identical** (``==`` over every rank of a
pp=2 × cp=2 × tp=2 mesh) — the fast path must be indistinguishable
everywhere it can be observed.

The columnar path must deliver **>= 10x** the legacy samples/sec at the
largest sweep point (the gap widens with batch size: log-depth tree queries
vs linear bin scans).  Results are written to ``BENCH_fig24_assembly.json``;
the CI ``assembly-bench`` leg re-runs the middle sweep point in smoke mode
and fails on a >30% samples/sec regression against the committed artifact via
``check_assembly_regression.py``.

Env knobs: ``BENCH_ASSEMBLY_SMOKE=1`` restricts the sweep to the middle point
(CI smoke — the smallest point's timed region is too short to gate on) and
writes the ``smoke`` section of the artifact.
"""

from __future__ import annotations

import gc
import os
import time

import numpy as np

from repro.core.assembly import StagedColumns
from repro.core.data_constructor import DataConstructor
from repro.core.plans import MicrobatchAssignment, ModulePlan
from repro.core.source_loader import PreparedSample
from repro.data.samples import Modality, Sample, SampleMetadata
from repro.metrics.report import MetricReport
from repro.parallelism.mesh import DeviceMesh
from repro.transforms.microbatch import (
    Microbatch,
    collate_columns_with_positions,
    collate_with_positions,
)

from .conftest import emit, write_bench_json

#: (batch samples, source count) sweep.  The smoke point must stay in the
#: full sweep so the CI gate can compare fresh smoke rows against committed
#: ones.
SWEEP_POINTS = ((2048, 4), (8192, 8), (32768, 16))
#: The smoke (CI) point is the *middle* sweep point: the smallest one's
#: timed region is a few milliseconds, which is too noisy to gate on.
SMOKE_POINTS = ((8192, 8),)
MAX_SEQUENCE_LENGTH = 2048
TIMED_REPS = 2
#: Microbatches per constructor plan in the byte-identity drive.
DELIVERY_MICROBATCHES = 8
#: Required columnar-over-legacy collation speedup at the largest sweep point.
REQUIRED_SPEEDUP = 10.0


def _smoke_mode() -> bool:
    return os.environ.get("BENCH_ASSEMBLY_SMOKE", "0") == "1"


def _make_batch(batch: int, num_sources: int) -> list[SampleMetadata]:
    """Deterministic sample metadata; each source owns a token-length band."""
    rng = np.random.default_rng(batch * 31 + num_sources)
    metas = []
    for index in range(batch):
        source = index % num_sources
        high = 64 + (1400 - 64) * (source + 1) // num_sources
        tokens = int(rng.integers(16, high))
        metas.append(
            SampleMetadata(
                sample_id=index + 1,
                source=f"src-{source}",
                modality=Modality.TEXT,
                text_tokens=tokens,
                raw_bytes=4 * tokens,
            )
        )
    return metas


def _time_collation(metas: list[SampleMetadata]) -> dict[str, float]:
    """Time legacy vs columnar collation of one whole batch; return samples/s."""
    microbatch = Microbatch(index=0, samples=list(metas))
    sample_ids = [meta.sample_id for meta in metas]
    lengths = np.array([meta.total_tokens for meta in metas], dtype=np.int64)

    # Best-of-N wall clocks: each rep collects garbage first (the legacy path
    # churns millions of short-lived objects whose GC debt would otherwise be
    # charged to whichever region runs next) and the minimum is kept, which
    # discards first-touch page faults and scheduler noise.  The cheap
    # columnar path gets extra reps; the legacy path's per-rep cost is
    # dominated by the bin scan and is stable from the first rep.
    legacy = columnar = None
    legacy_s = columnar_s = float("inf")
    for _ in range(TIMED_REPS):
        gc.collect()
        begin = time.perf_counter()
        legacy = collate_with_positions(microbatch, MAX_SEQUENCE_LENGTH, packing=True)
        legacy_s = min(legacy_s, time.perf_counter() - begin)
    for _ in range(TIMED_REPS * 3):
        gc.collect()
        begin = time.perf_counter()
        columnar = collate_columns_with_positions(
            0, sample_ids, lengths, MAX_SEQUENCE_LENGTH, packing=True
        )
        columnar_s = min(columnar_s, time.perf_counter() - begin)

    # Identical collations, byte for byte: same bins, segments, positions.
    assert legacy.sample_ids == columnar.sample_ids
    assert [(s.tokens, s.padding, s.segments) for s in legacy.sequences] == [
        (s.tokens, s.padding, s.segments) for s in columnar.sequences
    ]
    assert np.array_equal(legacy.position_ids, columnar.position_ids)
    assert legacy.total_tokens() == columnar.total_tokens()

    count = len(metas)
    return {
        "legacy_wall_s": legacy_s,
        "columnar_wall_s": columnar_s,
        "legacy_samples_per_s": count / legacy_s,
        "columnar_samples_per_s": count / columnar_s,
        "total_tokens": int(legacy.total_tokens()),
    }


def _delivery_plan(metas: list[SampleMetadata]) -> ModulePlan:
    plan = ModulePlan(
        module="backbone",
        axis="DP",
        num_buckets=1,
        num_microbatches=DELIVERY_MICROBATCHES,
    )
    per_microbatch = len(metas) // DELIVERY_MICROBATCHES
    for mb in range(DELIVERY_MICROBATCHES):
        chunk = metas[mb * per_microbatch : (mb + 1) * per_microbatch]
        plan.assignments.append(
            MicrobatchAssignment(bucket_index=0, microbatch_index=mb, samples=tuple(chunk))
        )
    return plan


def _assert_deliveries_identical(metas: list[SampleMetadata]) -> None:
    """Drive a real constructor in both modes; per-rank deliveries must match."""
    mesh = DeviceMesh(pp=2, dp=1, cp=2, tp=2, gpus_per_node=8)
    plan = _delivery_plan(metas)
    deliveries = {}
    for assembly in ("legacy", "columnar"):
        constructor = DataConstructor(
            bucket_index=0,
            mesh=mesh,
            dp_index=0,
            max_sequence_length=MAX_SEQUENCE_LENGTH,
            packing=True,
            assembly=assembly,
        )
        if assembly == "columnar":
            staged = StagedColumns()
            for meta in metas:
                staged.append(meta, meta.raw_bytes, 0.001, [])
            payload, _ = staged.take([meta.sample_id for meta in metas])
        else:
            payload = {
                meta.sample_id: PreparedSample(
                    sample=Sample(metadata=meta),
                    transform_latency_s=0.001,
                    transferred_bytes=meta.raw_bytes,
                )
                for meta in metas
            }
        constructor.construct(0, plan, payload)
        deliveries[assembly] = {
            rank: constructor.get_batch(0, rank) for rank in constructor.ranks_served(0)
        }
    assert deliveries["legacy"].keys() == deliveries["columnar"].keys()
    for rank, delivery in deliveries["legacy"].items():
        assert delivery == deliveries["columnar"][rank]


def _sweep(points) -> list[dict[str, object]]:
    rows = []
    for batch, num_sources in points:
        metas = _make_batch(batch, num_sources)
        timing = _time_collation(metas)
        _assert_deliveries_identical(metas)
        rows.append(
            {
                "batch": batch,
                "sources": num_sources,
                "total_tokens": timing["total_tokens"],
                "legacy_samples_per_s": timing["legacy_samples_per_s"],
                "columnar_samples_per_s": timing["columnar_samples_per_s"],
                "speedup": timing["columnar_samples_per_s"]
                / timing["legacy_samples_per_s"],
            }
        )
    return rows


def test_fig24_batch_assembly(benchmark):
    smoke = _smoke_mode()
    points = SMOKE_POINTS if smoke else SWEEP_POINTS
    rows = benchmark(_sweep, points)

    report = MetricReport(
        title="Fig. 24 - collation throughput vs batch size x sources",
        columns=[
            "batch", "sources", "tokens", "legacy samples/s",
            "columnar samples/s", "speedup",
        ],
    )
    for row in rows:
        report.add_row(
            row["batch"],
            row["sources"],
            row["total_tokens"],
            round(row["legacy_samples_per_s"]),
            round(row["columnar_samples_per_s"]),
            round(row["speedup"], 2),
        )
    emit(report)

    write_bench_json(
        "fig24_assembly",
        "smoke" if smoke else "assembly_sweep",
        {
            "rows": rows,
            "timed_reps": TIMED_REPS,
            "max_sequence_length": MAX_SEQUENCE_LENGTH,
        },
    )

    # Even at the smallest point the fast path must not be slower.
    assert all(row["speedup"] > 1.0 for row in rows)
    if not smoke:
        largest = rows[-1]
        # The tentpole claim: >= 10x collation samples/sec at the largest point.
        assert largest["speedup"] >= REQUIRED_SPEEDUP
        # The gap must widen with batch size (log-depth queries vs bin scans).
        assert largest["speedup"] > rows[0]["speedup"]
