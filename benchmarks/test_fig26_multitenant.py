"""Fig. 26 (ext): multi-tenant shared data plane vs equal-capacity silos.

The "input data processing as a service" claim (ROADMAP item 1): N jobs on
one shared ActorSystem + node pool beat the same N jobs on N silo clusters
of the same *total* capacity.  Two effects drive the win, both measured
here on memory-tight nodes where a burst mirror (~985 MiB next to the
constructors it feeds) does not fit into a silo's leftover fragments:

- **consolidation** — the shared pool packs (``placement_policy="pack"``)
  instead of spreading: tenant base fleets stack tightly, leaving whole
  nodes' worth of contiguous headroom that burst mirrors can actually use,
  where each silo's spread placement only leaves sub-mirror fragments on
  every node;
- **statistical multiplexing** — tenants burst at different steps, so the
  pooled headroom serves each burst in turn, while a silo caps every burst
  at its own sliver regardless of how idle its neighbours are.

Every tenant runs the byte-identical seed-5 job — only the burst *timing*
differs — so each silo is exactly as starved as the next: the silos place
zero of the burst mirrors the scaler asks for, while the pooled cluster
hosts most of them in its consolidation holes.

The isolation scenario exercises the other half of the contract: a
low-priority fleet that has absorbed the pool's headroom is preempted
(youngest mirrors drain-retired) the moment a high-priority burst queues,
so the high-priority tenant's data stall stays within tolerance of running
alone on the same pool — and far below the no-preemption control.

Writes ``BENCH_fig26_multitenant.json``:

- the committed ``multitenant`` section (full sweep + isolation), and
- a fresh ``smoke`` section when ``BENCH_MULTITENANT_SMOKE=1`` (the CI
  ``multitenant-bench`` leg), gated by
  ``benchmarks/check_multitenant_regression.py`` on the machine-independent
  same-run sharing gains.
"""

from __future__ import annotations

import os

from repro.actors.node import ResourceSpec
from repro.actors.runtime import ClusterSpec
from repro.core.framework import MegaScaleData, TrainingJobSpec
from repro.core.tenancy import TenantManager, TenantSpec
from repro.data.mixture import MixturePhase, MixtureSchedule
from repro.metrics.report import MetricReport
from repro.utils.units import GIB

from .conftest import emit, write_bench_json

#: Smoke mode only selects which artifact section is written (the CI leg's
#: fresh rows vs the committed baseline); the workload itself is identical,
#: so the regression gate compares like with like.
SMOKE = os.environ.get("BENCH_MULTITENANT_SMOKE") == "1"
NUM_STEPS = 14
TENANT_COUNTS = (1, 4, 8)
BURST_SOURCE = "navit_data/src000"

MIB = GIB // 1024

#: Memory-tight nodes: the seed-5 base fleet reserves {3097, 2736} MiB on a
#: silo's two accelerator nodes (2-GiB constructor + loaders + trainer per
#: node), so each node keeps < 985 MiB free — strictly less than one src000
#: burst mirror — for *every* feasible split.  A silo can never scale up.
#: The pooled cluster packs instead: constructors stack one per node and
#: loaders concentrate, leaving whole constructor-only nodes with ~1.5 GiB
#: of contiguous headroom that hosts the staggered bursts' mirrors.  The
#: CPU pod fits the planner (4 GiB) plus one spilled constructor.
TIGHT_ACCEL = ResourceSpec(cpu_cores=22.0, memory_bytes=3600 * MIB)
TIGHT_POD = ResourceSpec(cpu_cores=10.0, memory_bytes=6656 * MIB)


def silo_cluster() -> ClusterSpec:
    return ClusterSpec(
        accelerator_nodes=2,
        cpu_pods=1,
        accelerator_resources=TIGHT_ACCEL,
        cpu_pod_resources=TIGHT_POD,
    )


def shared_cluster(num_tenants: int) -> ClusterSpec:
    """N silos' worth of identical nodes, pooled."""
    return ClusterSpec(
        accelerator_nodes=2 * num_tenants,
        cpu_pods=num_tenants,
        accelerator_resources=TIGHT_ACCEL,
        cpu_pod_resources=TIGHT_POD,
    )


def staggered_mixture(tenant_index: int):
    """Uniform baseline with a 5-step burst on src000, staggered per tenant."""
    uniform = {"navit_data/src000": 1 / 3, "navit_data/src001": 1 / 3,
               "navit_data/src002": 1 / 3}
    burst = {"navit_data/src000": 0.8, "navit_data/src001": 0.1,
             "navit_data/src002": 0.1}
    start = 2 + (tenant_index % 4) * 3
    return MixtureSchedule.staged(
        [
            MixturePhase(0, uniform),
            MixturePhase(start, burst),
            MixturePhase(start + 5, uniform),
        ]
    )


_FETCH_BOUND_GPU = None


def make_job(tenant_index: int, gpu_spec=None) -> TrainingJobSpec:
    """One tenant's job: identical to every other tenant's (seed 5 — the
    node sizing above is derived from this seed's actor footprints), except
    for when its burst lands."""
    return TrainingJobSpec(
        pp=1, dp=2, cp=1, tp=1, encoder=None, strategy="backbone_balance",
        samples_per_dp_step=8, num_microbatches=2, num_sources=3,
        samples_per_source=64, seed=5, prefetch_depth=2,
        mixture=staggered_mixture(tenant_index), elastic_fleet=True,
        gpu_spec=gpu_spec,
    )


def fetch_bound_gpu():
    """Fetch-bound regime (as in fig. 21): loader throughput binds, so burst
    mirrors directly move the exposed stall."""
    global _FETCH_BOUND_GPU
    if _FETCH_BOUND_GPU is None:
        from repro.core.framework import fetch_bound_gpu_spec

        _FETCH_BOUND_GPU = fetch_bound_gpu_spec(make_job(0), compute_fraction=0.4)
    return _FETCH_BOUND_GPU


def tune_scaler(deployment: MegaScaleData) -> None:
    scaler = deployment.planner_handle.instance().scaler
    scaler.consecutive_intervals = 2
    scaler.window = 3


def run_silos(num_tenants: int) -> dict:
    """Each tenant on its own silo cluster: N isolated deployments."""
    per_tenant = []
    for index in range(num_tenants):
        deployment = MegaScaleData.deploy(
            make_job(index, gpu_spec=fetch_bound_gpu()), cluster=silo_cluster()
        )
        tune_scaler(deployment)
        try:
            summary = deployment.run_training(num_steps=NUM_STEPS, simulate=True)
            per_tenant.append(
                {
                    "data_stall_time_s": summary["data_stall_time_s"],
                    "virtual_wall_time_s": summary["virtual_wall_time_s"],
                    "mean_node_cpu_utilization": summary["mean_node_cpu_utilization"],
                    "fleet_spawns": summary["fleet_spawns"],
                    "pending_spawns": deployment.fleet.pending_spawn_count(),
                }
            )
        finally:
            deployment.shutdown()
    return _aggregate("silos", num_tenants, per_tenant)


def run_shared(num_tenants: int) -> dict:
    """All tenants admitted to one TenantManager on the pooled cluster."""
    manager = TenantManager(cluster=shared_cluster(num_tenants))
    per_tenant = []
    try:
        for index in range(num_tenants):
            deployment = manager.admit(
                TenantSpec(
                    name=f"tenant{index}",
                    job=make_job(index, gpu_spec=fetch_bound_gpu()),
                )
            )
            tune_scaler(deployment)
        manager.run(NUM_STEPS)
        for name, deployment in manager.deployments.items():
            history = deployment.history()
            utilization = deployment.utilization.summary()
            per_tenant.append(
                {
                    "data_stall_time_s": sum(r.data_stall_s for r in history),
                    "virtual_wall_time_s": deployment.virtual_time_s(),
                    "mean_node_cpu_utilization": utilization["mean_node_cpu_utilization"],
                    "fleet_spawns": deployment.fleet.spawn_count(),
                    "pending_spawns": deployment.fleet.pending_spawn_count(),
                }
            )
    finally:
        manager.shutdown()
    return _aggregate("shared", num_tenants, per_tenant)


def _aggregate(mode: str, num_tenants: int, per_tenant: list[dict]) -> dict:
    wall = max(row["virtual_wall_time_s"] for row in per_tenant)
    # Tenants progress independently (each pays its own virtual wall), so the
    # fleet's delivered throughput is the *sum* of per-tenant step rates.
    rate = sum(NUM_STEPS / row["virtual_wall_time_s"] for row in per_tenant)
    return {
        "mode": mode,
        "tenants": num_tenants,
        "steps_per_tenant": NUM_STEPS,
        "aggregate_plans_per_s": rate,
        "virtual_wall_time_s": wall,
        "total_data_stall_s": sum(row["data_stall_time_s"] for row in per_tenant),
        "mean_node_cpu_utilization": (
            sum(row["mean_node_cpu_utilization"] for row in per_tenant) / num_tenants
        ),
        "total_fleet_spawns": sum(row["fleet_spawns"] for row in per_tenant),
        "per_tenant": per_tenant,
    }


# -- isolation under priority preemption ---------------------------------------------


ISOLATION_TENANTS = 3
ISOLATION_STALL_TOLERANCE = 1.25


def isolation_job(bursty: bool) -> TrainingJobSpec:
    """Same seed-5 footprint as the sweep (the node sizing depends on it);
    the production tenant bursts, the batch fill stays uniform."""
    mixture = staggered_mixture(0) if bursty else None
    return TrainingJobSpec(
        pp=1, dp=2, cp=1, tp=1, encoder=None, strategy="backbone_balance",
        samples_per_dp_step=8, num_microbatches=2, num_sources=3,
        samples_per_source=64, seed=5, prefetch_depth=2,
        mixture=mixture, elastic_fleet=bursty, gpu_spec=fetch_bound_gpu(),
    )


def run_isolation(co_tenants: bool, enable_preemption: bool = True) -> dict:
    """The high-priority tenant's stall, alone vs against a low-pri fill.

    The two low-priority tenants explicitly absorb the pool's mirror
    headroom before the high-priority burst lands; with preemption on, the
    manager drain-retires their youngest mirrors the moment the burst's
    spawns queue.
    """
    manager = TenantManager(
        cluster=shared_cluster(ISOLATION_TENANTS),
        enable_preemption=enable_preemption,
    )
    try:
        prod = manager.admit(
            TenantSpec(name="prod", job=isolation_job(bursty=True), priority=2)
        )
        tune_scaler(prod)
        batch = []
        if co_tenants:
            for index in range(2):
                batch.append(
                    manager.admit(
                        TenantSpec(
                            name=f"batch{index}",
                            job=isolation_job(bursty=False),
                            priority=0,
                        )
                    )
                )
        for round_index in range(NUM_STEPS):
            prod.run_step()
            for deployment in batch:
                deployment.run_step()
            if round_index == 0:
                # The low-priority fleet absorbs every mirror slot the pool
                # has before the high-priority burst arrives.
                for deployment in batch:
                    deployment.scale_source(BURST_SOURCE, 4)
            manager.service_round(round_index)
        history = prod.history()
        return {
            "mode": (
                "shared" if enable_preemption else "shared_no_preemption"
            ) if co_tenants else "solo",
            "prod_data_stall_s": sum(r.data_stall_s for r in history),
            "prod_fleet_spawns": prod.fleet.spawn_count(),
            "prod_pending_spawns": prod.fleet.pending_spawn_count(),
            "batch_mirrors_left": sum(d.fleet.total_members() for d in batch),
            "preemptions": len(manager.preemptions),
        }
    finally:
        manager.shutdown()


def test_fig26_shared_pool_beats_equal_capacity_silos(benchmark):
    """Sharing wins on aggregate plans/s and utilization; priority isolation
    keeps a high-pri tenant's stall within tolerance of running alone."""
    def sweep():
        rows = []
        for num_tenants in TENANT_COUNTS:
            rows.append(run_silos(num_tenants))
            rows.append(run_shared(num_tenants))
        isolation = [
            run_isolation(co_tenants=False),
            run_isolation(co_tenants=True, enable_preemption=True),
            run_isolation(co_tenants=True, enable_preemption=False),
        ]
        return rows, isolation

    rows, isolation = benchmark(sweep)

    report = MetricReport(
        title="Fig. 26 (ext) - shared data plane vs equal-capacity silos",
        columns=["tenants", "mode", "agg plans/s", "wall (s)", "stall (s)",
                 "mean node cpu", "spawns"],
    )
    for row in rows:
        report.add_row(
            row["tenants"], row["mode"],
            round(row["aggregate_plans_per_s"], 3),
            round(row["virtual_wall_time_s"], 3),
            round(row["total_data_stall_s"], 3),
            round(row["mean_node_cpu_utilization"], 4),
            int(row["total_fleet_spawns"]),
        )
    emit(report)

    isolation_report = MetricReport(
        title="Fig. 26 (ext) - priority isolation under a low-pri fill",
        columns=["mode", "prod stall (s)", "prod spawns", "preemptions",
                 "batch actors left"],
    )
    for row in isolation:
        isolation_report.add_row(
            row["mode"], round(row["prod_data_stall_s"], 3),
            int(row["prod_fleet_spawns"]), int(row["preemptions"]),
            int(row["batch_mirrors_left"]),
        )
    emit(isolation_report)

    by_mode = {(row["tenants"], row["mode"]): row for row in rows}
    largest = max(TENANT_COUNTS)
    shared, silos = by_mode[(largest, "shared")], by_mode[(largest, "silos")]
    solo, fair, unfair = isolation

    payload = {
        "tenant_counts": list(TENANT_COUNTS),
        "steps_per_tenant": NUM_STEPS,
        "rows": rows,
        "isolation": isolation,
        "sharing_throughput_gain": (
            shared["aggregate_plans_per_s"] / silos["aggregate_plans_per_s"]
        ),
        "sharing_utilization_gain": (
            shared["mean_node_cpu_utilization"] / silos["mean_node_cpu_utilization"]
        ),
        "sharing_stall_reduction": (
            silos["total_data_stall_s"] / shared["total_data_stall_s"]
            if shared["total_data_stall_s"] > 0
            else float("inf")
        ),
        "isolation_stall_ratio": (
            fair["prod_data_stall_s"] / solo["prod_data_stall_s"]
            if solo["prod_data_stall_s"] > 0
            else float("inf")
        ),
    }
    write_bench_json("fig26_multitenant", "smoke" if SMOKE else "multitenant", payload)

    # The headline sharing claims, at every multi-tenant point of the sweep.
    for num_tenants in TENANT_COUNTS:
        if num_tenants == 1:
            continue
        shared_row = by_mode[(num_tenants, "shared")]
        silo_row = by_mode[(num_tenants, "silos")]
        assert shared_row["aggregate_plans_per_s"] > silo_row["aggregate_plans_per_s"]
        assert (
            shared_row["mean_node_cpu_utilization"]
            > silo_row["mean_node_cpu_utilization"]
        )
        assert shared_row["total_data_stall_s"] < silo_row["total_data_stall_s"]
        # The pool genuinely hosted burst mirrors the silos could not.
        assert shared_row["total_fleet_spawns"] > silo_row["total_fleet_spawns"]

    # Isolation: the low-pri fill was preempted and the high-pri tenant's
    # stall stayed within tolerance of running alone on the same pool.
    assert fair["preemptions"] >= 1
    assert unfair["preemptions"] == 0
    assert (
        fair["prod_data_stall_s"]
        <= solo["prod_data_stall_s"] * ISOLATION_STALL_TOLERANCE
    )
    # Without preemption the burst's mirrors stay queued behind the fill.
    assert unfair["prod_data_stall_s"] >= fair["prod_data_stall_s"]
    assert unfair["prod_pending_spawns"] >= 1
