"""Fig. 25 (ext): wallclock backend — real prefetch overlap, calibrated back.

The wallclock backend executes the same job on real thread-parallel actor
lanes (``backend="wallclock"``), so prefetch overlap stops being simulated
and becomes *measured*: on a fetch-bound job, ``prefetch_depth>0`` must
strictly reduce the trainer's measured wall-clock stall versus the
synchronous ``depth=0`` baseline, while delivering batches byte-identical to
the virtual backend at every depth (the engine's cross-backend contract).

The run also closes the calibration loop: every completed call's measured
occupancy feeds a :class:`~repro.core.cost_model.LatencyRecorder`, whose
:class:`~repro.core.cost_model.CalibratedLatencyProvider` replays those
latencies as virtual durations in a deterministic rerun.  The reconciliation
report compares measured vs simulated hidden/exposed/stall time; the gate
tolerance is :data:`RECONCILE_TOLERANCE`.  (Total wall time is reported but
not gated: the driver thread's real epilogue work between steps is visible
to the wallclock run and invisible to the event engine by design.)

Writes ``BENCH_fig25_wallclock.json``:

- the committed ``wallclock`` section (full depth sweep), and
- a fresh ``smoke`` section when ``BENCH_WALLCLOCK_SMOKE=1`` (the CI
  ``wallclock-bench`` leg), gated by
  ``benchmarks/check_wallclock_regression.py`` on the machine-independent
  same-run stall reduction.
"""

from __future__ import annotations

import os

from repro.core.cost_model import CalibratedLatencyProvider, reconcile_timing
from repro.core.framework import MegaScaleData, TrainingJobSpec, fetch_bound_gpu_spec
from repro.metrics.report import MetricReport

from .conftest import emit, write_bench_json

#: Smoke mode only selects which artifact section is written (the CI leg's
#: fresh rows vs the committed baseline); the workload itself is identical,
#: so the regression gate compares like with like.
SMOKE = os.environ.get("BENCH_WALLCLOCK_SMOKE") == "1"
NUM_STEPS = 8
DEPTHS = (0, 1, 2)
#: Real seconds the scaled depth-0 wallclock run should take; the time scale
#: is derived from a virtual probe so the sweep stays CI-friendly while the
#: modelled sleeps still dominate thread-scheduling noise.
REAL_BUDGET_S = 2.0
#: Reconciliation gate for measured-vs-calibrated-simulated data-plane time.
RECONCILE_TOLERANCE = 0.35
RECONCILE_METRICS = ("hidden_data_time_s", "exposed_data_time_s", "data_stall_time_s")


def make_job(depth: int, gpu_spec=None, **overrides) -> TrainingJobSpec:
    return TrainingJobSpec(
        pp=1, dp=2, cp=1, tp=1, encoder=None, strategy="backbone_balance",
        samples_per_dp_step=8, num_microbatches=2, num_sources=3,
        samples_per_source=128, seed=5, prefetch_depth=depth,
        gpu_spec=gpu_spec, **overrides,
    )


def delivery_signature(result):
    return {
        rank: [
            (piece.rank, piece.microbatch_index, piece.token_count, piece.payload_bytes)
            for piece in delivery.slices
        ]
        for rank, delivery in sorted(result.deliveries.items())
    }


def run_backend(job: TrainingJobSpec, provider=None):
    """Run NUM_STEPS steps; returns (signatures, metrics, calibration samples)."""
    fw = MegaScaleData.deploy(job)
    try:
        if provider is not None:
            fw.system.latency_provider = provider
        wall_start = fw.virtual_time_s()
        signatures = []
        metrics = {
            "data_stall_time_s": 0.0,
            "hidden_data_time_s": 0.0,
            "exposed_data_time_s": 0.0,
        }
        for _ in range(NUM_STEPS):
            result = fw.run_step(simulate=True)
            signatures.append(delivery_signature(result))
            metrics["data_stall_time_s"] += result.data_stall_s
            metrics["hidden_data_time_s"] += result.hidden_fetch_s
            metrics["exposed_data_time_s"] += result.exposed_fetch_s
        metrics["virtual_wall_time_s"] = fw.virtual_time_s() - wall_start
        engine = fw.system.engine
        samples = engine.calibration.samples() if engine is not None else None
        return signatures, metrics, samples
    finally:
        fw.shutdown()


def _sweep():
    gpu = fetch_bound_gpu_spec(make_job(0), compute_fraction=0.42)
    # Size the time scale off a virtual probe: depth 0 exposes the whole
    # fetch chain, so its virtual wall time bounds the sweep's real cost.
    _, probe, _ = run_backend(make_job(0, gpu))
    time_scale = REAL_BUDGET_S / max(1e-9, probe["virtual_wall_time_s"])

    rows = []
    calibration_samples = None
    for depth in DEPTHS:
        virtual_sigs, virtual_metrics, _ = run_backend(make_job(depth, gpu))
        wallclock_sigs, measured, samples = run_backend(
            make_job(
                depth, gpu, backend="wallclock", wallclock_time_scale=time_scale
            )
        )
        rows.append(
            {
                "prefetch_depth": depth,
                "byte_identical": virtual_sigs == wallclock_sigs,
                "measured": measured,
                "simulated": virtual_metrics,
            }
        )
        calibration_samples = samples  # deepest depth's samples win

    # Calibration loop: replay the deepest run's measured latencies as
    # virtual durations in a deterministic rerun, then reconcile.
    provider = CalibratedLatencyProvider(calibration_samples)
    _, calibrated, _ = run_backend(make_job(DEPTHS[-1], gpu), provider=provider)
    reconciliation = reconcile_timing(
        rows[-1]["measured"],
        calibrated,
        metrics=RECONCILE_METRICS,
        tolerance=RECONCILE_TOLERANCE,
    )
    return time_scale, rows, calibrated, reconciliation


def test_fig25_wallclock_prefetch_hides_measured_stall(benchmark):
    """Real threads: depth>0 cuts measured stall; batches match virtual."""
    time_scale, rows, calibrated, reconciliation = benchmark.pedantic(
        _sweep, rounds=1, iterations=1
    )

    report = MetricReport(
        title="Fig. 25 (ext) - wallclock backend: measured stall vs prefetch depth",
        columns=["depth", "measured stall (s)", "simulated stall (s)",
                 "measured wall (s)", "simulated wall (s)", "byte-identical"],
    )
    for row in rows:
        report.add_row(
            row["prefetch_depth"],
            round(row["measured"]["data_stall_time_s"], 3),
            round(row["simulated"]["data_stall_time_s"], 3),
            round(row["measured"]["virtual_wall_time_s"], 3),
            round(row["simulated"]["virtual_wall_time_s"], 3),
            row["byte_identical"],
        )
    emit(report)

    baseline = rows[0]["measured"]["data_stall_time_s"]
    deepest = rows[-1]["measured"]["data_stall_time_s"]
    hidden = rows[-1]["measured"]["hidden_data_time_s"]
    exposed = rows[-1]["measured"]["exposed_data_time_s"]
    payload = {
        "steps": NUM_STEPS,
        "time_scale": time_scale,
        "rows": rows,
        "calibrated_simulation": calibrated,
        "reconciliation": reconciliation,
        "stall_reduction": baseline / deepest if deepest > 0 else float("inf"),
        # The same-run overlap ratio the CI gate tracks: what fraction of the
        # deepest run's measured fetch time real prefetching actually hid.
        "hidden_fraction": hidden / (hidden + exposed) if hidden + exposed > 0 else 0.0,
    }
    write_bench_json("fig25_wallclock", "smoke" if SMOKE else "wallclock", payload)

    # Cross-backend contract: every depth delivered byte-identical batches.
    assert all(row["byte_identical"] for row in rows)
    # The headline claim: real prefetch overlap strictly cuts the measured
    # trainer stall on a fetch-bound job, at every depth > 0.
    assert baseline > 0
    for row in rows[1:]:
        assert row["measured"]["data_stall_time_s"] < baseline
    # Calibration closes the loop: the virtual rerun under replayed measured
    # latencies reconciles the data-plane time split within tolerance.
    assert reconciliation["within_tolerance"], reconciliation
