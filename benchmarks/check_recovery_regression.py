"""CI gate: fail when bounded-replay recovery throughput regresses vs the artifact.

The ``recovery-bench`` CI leg runs ``test_fig23_recovery_latency`` in smoke
mode (``BENCH_RECOVERY_SMOKE=1``), which merges a fresh ``smoke`` section into
``BENCH_fig23_recovery.json`` next to the committed full-sweep
``recovery_latency`` section.  This script compares the fresh smoke bounded
recoveries/sec against the committed row at the same run length and exits
non-zero on a regression beyond the threshold (default: 30%).  The same-run
full-over-bounded speedup is printed as machine-independent context: a slow
runner depresses both recovery policies equally, so a healthy speedup next to
a failed absolute check points at the runner — while a collapsed speedup
means bounded recovery has drifted back toward O(steps) replay even if the
absolute numbers pass.
"""

from __future__ import annotations

import sys

from _regression import gate_ratio, load_sections, make_parser


def main(argv: list[str] | None = None) -> int:
    args = make_parser(__doc__, "BENCH_fig23_recovery.json").parse_args(argv)

    committed_section, fresh_section = load_sections(args.artifact, "recovery_latency")
    if not committed_section or not fresh_section:
        return 1
    committed = {row["steps"]: row for row in committed_section.get("rows", [])}
    fresh_rows = fresh_section.get("rows", [])
    if not committed:
        print("committed recovery_latency section has no rows — nothing to compare")
        return 1
    if not fresh_rows:
        print("fresh smoke section has no rows — run the benchmark with BENCH_RECOVERY_SMOKE=1")
        return 1

    failures = 0
    for row in fresh_rows:
        steps = row["steps"]
        baseline = committed.get(steps)
        if baseline is None:
            print(f"steps={steps}: no committed baseline row, skipping")
            continue
        ok = gate_ratio(
            f"steps={steps} bounded recoveries/s",
            row["recoveries_per_s_bounded"],
            baseline["recoveries_per_s_bounded"],
            args.threshold,
        )
        print(
            f"steps={steps}: same-run full-over-bounded speedup "
            f"x{row['speedup']:.2f} (committed sweep x{baseline['speedup']:.2f})"
        )
        if not ok:
            failures += 1
        if row["speedup"] <= 1.0:
            print(
                f"steps={steps}: REGRESSION — bounded recovery is no faster "
                "than full from-genesis replay in this run"
            )
            failures += 1
        if row["bounded_replay_plans"] > row["checkpoint_interval"]:
            print(
                f"steps={steps}: REGRESSION — bounded recovery replayed "
                f"{row['bounded_replay_plans']} plans, more than the "
                f"checkpoint interval ({row['checkpoint_interval']})"
            )
            failures += 1

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
