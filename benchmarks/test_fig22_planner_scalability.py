"""Fig. 22 (planner leg) — plan-generation throughput vs buffer depth × sources.

PR 3 made event *dispatch* O(E·log A); what throttles the simulator next is
the per-step planning cycle itself: the legacy Planner re-copies every
loader's whole buffer each step and the DGraph materialises per-sample node
dictionaries and Python grouping lists over the entire buffered set before a
single sample is mixed — O(total buffered samples) of object churn per plan.
This benchmark sweeps buffer depth × source count and measures raw planning
throughput (plans/sec of ``Planner.generate_plan``) under both
implementations:

- ``planning="legacy"`` — full-buffer gather + eager row-mode DGraph;
- ``planning="columnar"`` — delta buffer gather (loaders ship only the
  mutations since the previous plan) + vectorized DGraph with lazy lineage.

Between timed plans each loader *consumes* its demanded ids and refills
(``replay_demands``), so the columnar path is measured in its steady state:
non-empty deltas proportional to the per-step batch, not to the buffer.
Both paths are asserted to emit byte-identical source demands step for step.

The columnar path must deliver **>= 5x** the legacy plans/sec at the largest
sweep point (the gap widens with buffer depth: per-delta vs per-buffer).
Results are written to ``BENCH_fig22_planner.json``; the CI ``planner-bench``
leg re-runs the middle sweep point in smoke mode and fails on a >30%
plans/sec regression against the committed artifact via
``check_plan_regression.py``.

Env knobs: ``BENCH_PLANNER_SMOKE=1`` restricts the sweep to the middle point
(CI smoke — the smallest point's timed region is too short to gate on) and
writes the ``smoke`` section of the artifact.
"""

from __future__ import annotations

import os
import time

from repro.actors.runtime import ActorSystem, ClusterSpec
from repro.core.place_tree import ClientPlaceTree
from repro.core.planner import Planner
from repro.core.source_loader import SourceLoader
from repro.core.strategies import StrategyConfig, backbone_balance_strategy
from repro.data.mixture import MixtureSchedule
from repro.data.synthetic import build_source_catalog, navit_like_spec
from repro.metrics.report import MetricReport
from repro.parallelism.mesh import DeviceMesh
from repro.storage.filesystem import SimulatedFileSystem
from repro.utils.units import GIB

from .conftest import emit, write_bench_json

#: (buffer depth per source, source count) sweep; total buffered metadata
#: ranges from 2k to ~100k samples.  The smoke point must stay in the full
#: sweep so the CI gate can compare fresh smoke rows against committed ones.
SWEEP_POINTS = ((256, 8), (1024, 16), (4096, 24))
#: The smoke (CI) point is the *middle* sweep point: the smallest one's
#: timed region is a few milliseconds, which is too noisy to gate on.
SMOKE_POINTS = ((1024, 16),)
#: Samples mixed per plan (the per-step batch) — fixed across the sweep so
#: depth scales only the *buffered* metadata, as in a deep-prefetch fleet.
BATCH_SAMPLES = 64
TIMED_STEPS = 10
#: Required columnar-over-legacy planning speedup at the largest sweep point.
REQUIRED_SPEEDUP = 5.0


def _smoke_mode() -> bool:
    return os.environ.get("BENCH_PLANNER_SMOKE", "0") == "1"


def _drive(planning: str, depth: int, num_sources: int) -> dict[str, object]:
    """Time ``generate_plan`` over a churning fleet; return rate + demands."""
    filesystem = SimulatedFileSystem()
    catalog = build_source_catalog(
        navit_like_spec(num_sources=num_sources, samples_per_source=depth, seed=0),
        filesystem,
    )
    system = ActorSystem(ClusterSpec(accelerator_nodes=4, cpu_pods=1))
    handles = []
    for index, source in enumerate(catalog.sources()):
        handles.append(
            system.create_actor(
                lambda src=source: SourceLoader(src, filesystem, buffer_size=depth),
                name=f"loader-{index}",
                memory_bytes=GIB,
            )
        )
    mixture = MixtureSchedule.uniform(catalog.names())
    tree = ClientPlaceTree(DeviceMesh(pp=1, dp=4, cp=1, tp=1, gpus_per_node=4))
    planner = Planner(
        strategy=backbone_balance_strategy(
            StrategyConfig(
                mixture=mixture, sample_count=BATCH_SAMPLES, num_microbatches=2
            )
        ),
        tree=tree,
        mixture=mixture,
        planning=planning,
    )
    planner.register_loaders(handles)

    planner.generate_plan(0)  # warm-up: the columnar path's one-time resync
    plan_seconds = 0.0
    demand_trace: list[dict[str, list[int]]] = []
    for step in range(1, TIMED_STEPS + 1):
        begin = time.perf_counter()
        plan = planner.generate_plan(step)
        plan_seconds += time.perf_counter() - begin
        demand_trace.append(plan.source_demands)
        # Steady-state churn (untimed): every loader consumes its demanded
        # ids and refills, so the next delta carries ~one batch of events.
        for handle in handles:
            ids = plan.source_demands.get(handle.instance().source.name, [])
            if ids:
                handle.call("replay_demands", list(ids))
    return {
        "planning": planning,
        "depth": depth,
        "sources": num_sources,
        "buffered_samples": depth * num_sources,
        "plans": TIMED_STEPS,
        "plan_wall_s": plan_seconds,
        "plans_per_s": TIMED_STEPS / plan_seconds if plan_seconds > 0 else float("inf"),
        "demand_trace": demand_trace,
    }


def _sweep(points) -> list[dict[str, object]]:
    rows = []
    for depth, num_sources in points:
        legacy = _drive("legacy", depth, num_sources)
        columnar = _drive("columnar", depth, num_sources)
        # Identical schedule, identical churn: the fast path must demand the
        # exact same samples every step.
        assert columnar["demand_trace"] == legacy["demand_trace"]
        rows.append(
            {
                "depth": depth,
                "sources": num_sources,
                "buffered_samples": depth * num_sources,
                "batch_samples": BATCH_SAMPLES,
                "legacy_plans_per_s": legacy["plans_per_s"],
                "columnar_plans_per_s": columnar["plans_per_s"],
                "speedup": columnar["plans_per_s"] / legacy["plans_per_s"],
            }
        )
    return rows


def test_fig22_planner_scalability(benchmark):
    smoke = _smoke_mode()
    points = SMOKE_POINTS if smoke else SWEEP_POINTS
    rows = benchmark(_sweep, points)

    report = MetricReport(
        title="Fig. 22 (planner) - plan throughput vs buffer depth x sources",
        columns=[
            "depth", "sources", "buffered", "legacy plans/s",
            "columnar plans/s", "speedup",
        ],
    )
    for row in rows:
        report.add_row(
            row["depth"],
            row["sources"],
            row["buffered_samples"],
            round(row["legacy_plans_per_s"], 1),
            round(row["columnar_plans_per_s"], 1),
            round(row["speedup"], 2),
        )
    emit(report)

    write_bench_json(
        "fig22_planner",
        "smoke" if smoke else "planner_scalability",
        {"rows": rows, "timed_steps": TIMED_STEPS, "batch_samples": BATCH_SAMPLES},
    )

    # Even at the smallest point the fast path must not be slower.
    assert all(row["speedup"] > 1.0 for row in rows)
    if not smoke:
        largest = rows[-1]
        # The tentpole claim: >= 5x plans/sec at the largest sweep point.
        assert largest["speedup"] >= REQUIRED_SPEEDUP
        # The gap must widen with buffered metadata (per-delta vs per-buffer).
        assert largest["speedup"] > rows[0]["speedup"]
