"""Fig. 12 — comparison of data processing systems at 288 and 576 GPUs.

Regenerates the three panels for the Llama-12B + ViT-2B workload: average
training iteration time, average data fetch latency and average loader memory
per node, comparing five baseline architectures against MegaScale-Data.  The
expected shape: MegaScale-Data wins iteration time by ~2.5-4x (load-time
orchestration) and per-node memory by roughly an order of magnitude, while its
fetch latency stays small enough to be hidden behind training compute.
"""

from __future__ import annotations

from repro.baselines import ALL_BASELINES
from repro.baselines.megascale_model import MegaScaleArchitectureModel
from repro.metrics.report import MetricReport
from repro.training.models import VLMConfig, llama_12b, vit_2b
from repro.training.simulator import TrainingSimulator
from repro.utils.units import bytes_to_gib

from .conftest import emit, sample_batch

SAMPLES_PER_DP_STEP = 64
NUM_MICROBATCHES = 8
TARGET_ITERATION_S = 30.0


def _evaluate_system(name, loader_cls, catalog, mesh, samples):
    loader = loader_cls(
        catalog,
        mesh,
        samples_per_dp_step=SAMPLES_PER_DP_STEP,
        num_microbatches=NUM_MICROBATCHES,
        target_iteration_time_s=TARGET_ITERATION_S,
    )
    report = loader.evaluate()
    assignments = loader.build_assignments(samples, seed=12)
    model = VLMConfig(encoder=vit_2b(), backbone=llama_12b())
    simulator = TrainingSimulator(model, mesh)
    iteration = simulator.simulate_iteration(assignments, data_fetch_latency_s=report.fetch_latency_s)
    return {
        "system": name,
        "iteration_s": iteration.iteration_time_s,
        "fetch_s": report.fetch_latency_s,
        "mem_per_node_gib": bytes_to_gib(report.per_node_memory_bytes),
        "exposed_fetch_s": iteration.exposed_fetch_time_s,
    }


def _compare(catalog, filesystem, mesh):
    samples = sample_batch(catalog, filesystem, SAMPLES_PER_DP_STEP * mesh.size("DP"), seed=7)
    rows = [
        _evaluate_system(name, cls, catalog, mesh, samples) for name, cls in ALL_BASELINES.items()
    ]
    rows.append(_evaluate_system("megascale", MegaScaleArchitectureModel, catalog, mesh, samples))
    return rows


def _report(rows, title):
    report = MetricReport(
        title=title,
        columns=["system", "iteration time (s)", "fetch latency (s)", "memory/node (GiB)"],
    )
    for row in rows:
        report.add_row(
            row["system"],
            round(row["iteration_s"], 2),
            round(row["fetch_s"], 2),
            round(row["mem_per_node_gib"], 2),
        )
    emit(report)


def _assert_shape(rows):
    by_name = {row["system"]: row for row in rows}
    ours = by_name["megascale"]
    torch = by_name["torch"]
    baseline_iterations = [row["iteration_s"] for name, row in by_name.items() if name != "megascale"]
    baseline_memory = [row["mem_per_node_gib"] for name, row in by_name.items() if name != "megascale"]
    # Iteration-time speedup (paper: up to 3.63x over the best baseline; the
    # analytical simulator reproduces the direction and a >1.25x margin).
    assert ours["iteration_s"] < min(baseline_iterations)
    assert torch["iteration_s"] / ours["iteration_s"] > 1.25
    # Memory reduction (paper: 4.2x at 288 GPUs, 14.5x at 576 GPUs).
    assert min(baseline_memory) / ours["mem_per_node_gib"] > 3.0
    # Fetch latency stays maskable behind compute.
    assert ours["exposed_fetch_s"] == 0.0


def test_fig12_288_gpus(benchmark, navit_catalog, filesystem, mesh_288):
    rows = benchmark(_compare, navit_catalog, filesystem, mesh_288)
    _report(rows, "Fig. 12 - 288 GPUs (TP=4, PP=8, DP=9), Llama-12B + ViT-2B")
    _assert_shape(rows)


def test_fig12_576_gpus(benchmark, navit_catalog, filesystem, mesh_576, mesh_288):
    rows = benchmark(_compare, navit_catalog, filesystem, mesh_576)
    _report(rows, "Fig. 12 - 576 GPUs (TP=4, PP=4, CP=4, DP=9), Llama-12B + ViT-2B")
    _assert_shape(rows)
    # The 576-GPU configuration has more CP/PP redundancy for the baselines to
    # waste, so MegaScale-Data's memory advantage grows versus 288 GPUs.
    rows_288 = _compare(navit_catalog, filesystem, mesh_288)

    def memory_ratio(rows_):
        by_name = {row["system"]: row for row in rows_}
        return by_name["torch"]["mem_per_node_gib"] / by_name["megascale"]["mem_per_node_gib"]

    assert memory_ratio(rows) > memory_ratio(rows_288) * 0.8
