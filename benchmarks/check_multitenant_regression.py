"""CI gate: fail when the shared data plane's sharing wins regress.

The ``multitenant-bench`` CI leg runs ``test_fig26_multitenant`` in smoke
mode (``BENCH_MULTITENANT_SMOKE=1``), which merges a fresh ``smoke``
section into ``BENCH_fig26_multitenant.json`` next to the committed
full-run ``multitenant`` section.  This script compares the fresh smoke
run's *same-run* shared-vs-silos metrics against the committed ones and
exits non-zero on a regression beyond the threshold (default: 30%).

Every gated quantity is a ratio measured inside one run on one machine —
shared over silos on the same virtual clock, or the high-priority tenant's
stall against its own solo baseline — so a slow CI runner cancels out: the
gate tracks the *benefit of sharing* and the *cost of co-tenancy*, not the
runner's absolute speed.
"""

from __future__ import annotations

import sys

from _regression import gate_ratio, load_sections, make_parser


def main(argv: list[str] | None = None) -> int:
    args = make_parser(__doc__, "BENCH_fig26_multitenant.json").parse_args(argv)

    committed, fresh = load_sections(args.artifact, "multitenant")
    if not committed or not fresh:
        return 1

    failures = 0
    for metric in (
        "sharing_throughput_gain",
        "sharing_utilization_gain",
        "sharing_stall_reduction",
    ):
        # The gains over silos are small but deterministic; compare the
        # *gain over parity* (value - 1) so a pool that stopped beating the
        # silos at all trips the gate regardless of its absolute magnitude.
        fresh_gain = float(fresh[metric]) - 1.0
        reference_gain = float(committed[metric]) - 1.0
        if fresh_gain <= 0:
            print(f"{metric}: fresh x{float(fresh[metric]):.4f} — REGRESSION (no gain)")
            failures += 1
            continue
        if not gate_ratio(f"{metric} gain", fresh_gain, reference_gain, args.threshold):
            failures += 1

    # Isolation contract: with preemption the high-priority tenant's stall
    # stays near its solo baseline (ratio ~1); gate the head-room left under
    # the benchmark's own 1.25x tolerance rather than the raw ratio.
    ratio = float(fresh["isolation_stall_ratio"])
    print(f"isolation stall ratio: x{ratio:.4f} (tolerance x1.25)")
    if ratio > 1.25:
        print("REGRESSION: high-priority stall exceeded the isolation tolerance")
        failures += 1

    shared_rows = [
        row
        for row in fresh.get("rows", [])
        if row.get("mode") == "shared" and row.get("tenants", 0) > 1
    ]
    spawns = sum(row.get("total_fleet_spawns", 0) for row in shared_rows)
    print(f"smoke shared-pool mirror spawns: {spawns:.0f}")
    if spawns < 1:
        print("REGRESSION: the shared pool never hosted a burst mirror")
        failures += 1

    preemptions = sum(
        row.get("preemptions", 0)
        for row in fresh.get("isolation", [])
        if row.get("mode") == "shared"
    )
    print(f"smoke preemptions (fair run): {preemptions:.0f}")
    if preemptions < 1:
        print("REGRESSION: the priority burst was never served by preemption")
        failures += 1

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
