"""Fig. 19 — cost model fidelity and the partition cluster-size trade-off.

Left panel: the encoder / backbone cost models registered through the
``cost`` primitive should track the simulator's measured per-step times.
Right panel: increasing the source-clustering size gives the AutoScaler less
per-source resolution — CPU usage falls but the rescale frequency rises; the
paper identifies a mid-sized cluster count (4) as the sweet spot.
"""

from __future__ import annotations

import numpy as np

from repro.core.autoscaler import MixtureDrivenScaler, ResourceBudget, SourceAutoPartitioner
from repro.core.cost_model import BackboneCostModel, EncoderCostModel
from repro.data.mixture import MixtureSchedule
from repro.metrics.report import MetricReport
from repro.parallelism.mesh import DeviceMesh
from repro.training.models import VLMConfig, get_model
from repro.training.simulator import TrainingSimulator
from repro.utils.rng import derive_rng

from .conftest import emit, sample_batch

STEPS = 40
SAMPLES_PER_STEP = 16


def _fidelity_series(catalog, filesystem):
    mesh = DeviceMesh(pp=1, dp=1, cp=1, tp=1)
    encoder = get_model("ViT-2B")
    backbone_single_layer = get_model("Llama-12B")
    model = VLMConfig(encoder=encoder, backbone=backbone_single_layer)
    simulator = TrainingSimulator(model, mesh)
    encoder_cost = EncoderCostModel(encoder)
    backbone_cost = BackboneCostModel(backbone_single_layer)

    predicted_encoder, measured_encoder = [], []
    predicted_backbone, measured_backbone = [], []
    for step in range(STEPS):
        samples = sample_batch(catalog, filesystem, SAMPLES_PER_STEP, seed=200 + step)
        predicted_encoder.append(sum(encoder_cost(s)[0] for s in samples))
        predicted_backbone.append(sum(backbone_cost(s)[0] for s in samples))
        result = simulator.simulate_iteration([[samples]])
        measured_encoder.append(result.encoder_time_s)
        measured_backbone.append(result.backbone_time_s)
    return (
        np.array(predicted_encoder),
        np.array(measured_encoder),
        np.array(predicted_backbone),
        np.array(measured_backbone),
    )


def _cluster_size_tradeoff(catalog):
    """CPU usage and rescale frequency versus the source cluster count."""
    budget = ResourceBudget(cpu_cores=1024.0, memory_bytes=2**42)
    names = catalog.names()
    rng = derive_rng(19, "weights")
    results = {}
    for clusters in (3, 4, 5):
        plan = SourceAutoPartitioner(num_clusters=clusters).partition(catalog, budget)
        scaler = MixtureDrivenScaler(plan, consecutive_intervals=2, window=5)
        # A drifting mixture: a rotating subset of sources becomes hot.
        for step in range(60):
            hot = set(rng.choice(len(names), size=max(1, len(names) // 6), replace=False))
            weights = {
                name: (5.0 if index in hot else 1.0) for index, name in enumerate(names)
            }
            total = sum(weights.values())
            scaler.observe(step, {k: v / total for k, v in weights.items()})
        cpu_usage = plan.total_workers()
        results[clusters] = {"cpu": cpu_usage, "rescales": scaler.rescale_events}
    return results


def test_fig19_cost_model_fidelity(benchmark, navit_catalog, filesystem):
    pred_enc, meas_enc, pred_bb, meas_bb = benchmark(_fidelity_series, navit_catalog, filesystem)

    corr_encoder = float(np.corrcoef(pred_enc, meas_enc)[0, 1])
    corr_backbone = float(np.corrcoef(pred_bb, meas_bb)[0, 1])
    report = MetricReport(
        title="Fig. 19 (left) - cost model vs measured per-step time",
        columns=["module", "predicted mean (s)", "measured mean (s)", "correlation"],
    )
    report.add_row("encoder", round(float(pred_enc.mean()), 3), round(float(meas_enc.mean()), 3), round(corr_encoder, 3))
    report.add_row("backbone", round(float(pred_bb.mean()), 3), round(float(meas_bb.mean()), 3), round(corr_backbone, 3))
    emit(report)

    # The cost models track the simulator's step-to-step variation closely.
    assert corr_encoder > 0.95
    assert corr_backbone > 0.95


def test_fig19_cluster_size_tradeoff(benchmark, navit_catalog):
    results = benchmark(_cluster_size_tradeoff, navit_catalog)

    report = MetricReport(
        title="Fig. 19 (right) - partition cluster size trade-off",
        columns=["cluster count", "CPU usage (workers)", "rescale events"],
    )
    for clusters, row in sorted(results.items()):
        report.add_row(clusters, row["cpu"], row["rescales"])
    emit(report)

    # Coarser clustering (more clusters merged) trades CPU usage against
    # rescale churn: the two metrics move in opposite directions across the
    # sweep, which is the trade-off the paper resolves by picking 4.
    cpus = [results[c]["cpu"] for c in (3, 4, 5)]
    rescales = [results[c]["rescales"] for c in (3, 4, 5)]
    assert max(cpus) > min(cpus) or max(rescales) > min(rescales)
    assert all(r >= 0 for r in rescales)
