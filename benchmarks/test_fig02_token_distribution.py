"""Fig. 2 — skewed text/image token distributions for coyo700m and navit_data.

Regenerates the sample-ratio histogram (bars) and the total-token share per
length bucket (pie) for both dataset groups and both modalities, and checks
the skew properties the paper highlights (e.g. 98% of coyo text samples are
<= 64 tokens while the long tail contributes a disproportionate token share).
"""

from __future__ import annotations

import numpy as np

from repro.data.distributions import LENGTH_BUCKETS, distribution_for, skewness_ratio
from repro.metrics.report import MetricReport
from repro.utils.rng import derive_rng

from .conftest import emit

NUM_SAMPLES = 60_000


def _histograms(group: str, modality: str):
    dist = distribution_for(group, modality)
    lengths = dist.sample_lengths(NUM_SAMPLES, derive_rng(0, "fig2", group, modality))
    return lengths, dist.bucket_histogram(lengths), dist.token_share_histogram(lengths)


def test_fig2_token_distributions(benchmark):
    results = benchmark(
        lambda: {
            (group, modality): _histograms(group, modality)
            for group in ("coyo700m", "navit_data")
            for modality in ("text", "image")
        }
    )

    report = MetricReport(
        title="Fig. 2 - token length distribution (sample ratio / token share per bucket)",
        columns=["group/modality"] + [f"<={edge}" for edge in LENGTH_BUCKETS],
    )
    for (group, modality), (_, sample_ratio, _) in results.items():
        report.add_row(f"{group}/{modality} samples", *[round(float(v), 3) for v in sample_ratio])
    for (group, modality), (_, _, token_share) in results.items():
        report.add_row(f"{group}/{modality} tokens", *[round(float(v), 3) for v in token_share])
    emit(report)

    coyo_text_lengths = results[("coyo700m", "text")][0]
    navit_text_lengths = results[("navit_data", "text")][0]
    coyo_image_lengths = results[("coyo700m", "image")][0]

    # Paper: 98.23% of coyo text samples are <= 64 tokens ...
    assert float((coyo_text_lengths <= 64).mean()) > 0.85
    # ... while the >64-token tail holds a disproportionate share of tokens.
    assert skewness_ratio(coyo_text_lengths) > 3.0
    # navit text is much longer-tailed than coyo text.
    assert float(np.mean(navit_text_lengths)) > 5 * float(np.mean(coyo_text_lengths))
    # Image patch sequences dominate text sequences in token count.
    assert float(np.mean(coyo_image_lengths)) > 10 * float(np.mean(coyo_text_lengths))


def test_fig2_image_distribution_mass_above_2k(benchmark):
    def tail_masses():
        masses = {}
        for group in ("coyo700m", "navit_data"):
            dist = distribution_for(group, "image")
            lengths = dist.sample_lengths(NUM_SAMPLES, derive_rng(1, "fig2-tail", group))
            masses[group] = float((lengths >= 2048).mean())
        return masses

    masses = benchmark(tail_masses)
    report = MetricReport(title="Fig. 2 - fraction of images with >= 2k patches", columns=["group", "fraction"])
    for group, mass in masses.items():
        report.add_row(group, round(mass, 3))
    emit(report)
    # Both groups place most of their image token mass at >= 2k patches.
    assert masses["coyo700m"] > 0.5
    assert masses["navit_data"] > 0.5
