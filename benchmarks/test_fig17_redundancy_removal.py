"""Fig. 17 — memory savings from removing parallelism and source redundancy.

(a) Parallelism redundancy: ratio of loader memory with a shared, constructor-
mediated data path ("remote") versus one full loader per rank ("local"),
swept over CP x PP sizes at 512 GPUs.  The ratio should fall well below 1 and
shrink as CP/PP grow.

(b) Source redundancy: host memory over time for 306 vs 100 sources, and for
306 sources with the catalog partitioned across DP ranks (SP=2), staying
below the node memory threshold.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import PER_SOURCE_STATE_BYTES
from repro.baselines.megascale_model import MegaScaleArchitectureModel
from repro.baselines.torch_loader import TorchColocatedLoader
from repro.core.source_loader import WORKER_CONTEXT_BYTES
from repro.data.synthetic import build_source_catalog, navit_like_spec
from repro.metrics.report import MetricReport
from repro.parallelism.mesh import DeviceMesh
from repro.storage.filesystem import SimulatedFileSystem
from repro.utils.units import TIB, bytes_to_gib

from .conftest import emit

GPUS = 512


def _parallelism_grid(catalog):
    """Memory ratio (shared constructor path / per-rank loaders) over CP x PP."""
    ratios = {}
    for pp in (1, 2, 4, 8, 16):
        for cp in (1, 2, 4, 8, 16):
            tp = 2
            dp = max(1, GPUS // (pp * cp * tp))
            mesh = DeviceMesh(pp=pp, dp=dp, cp=cp, tp=tp, gpus_per_node=16)
            local = TorchColocatedLoader(catalog, mesh, samples_per_dp_step=32, num_microbatches=4)
            remote = MegaScaleArchitectureModel(catalog, mesh, samples_per_dp_step=32, num_microbatches=4)
            ratios[(cp, pp)] = remote.total_memory_bytes() / local.total_memory_bytes()
    return ratios


def _source_redundancy_series():
    """Host memory over simulated time slots for three configurations."""
    series = {}
    mesh = DeviceMesh(pp=1, dp=2, cp=1, tp=16, gpus_per_node=16)
    for label, num_sources, source_parallel in (
        ("SRC=306", 306, 1),
        ("SRC=306, SP=2", 306, 2),
        ("SRC=100", 100, 1),
    ):
        workers = 8
        clients = mesh.size("DP") * workers
        per_client_sources = num_sources / source_parallel
        base = clients * per_client_sources * PER_SOURCE_STATE_BYTES + clients * WORKER_CONTEXT_BYTES
        # Buffers ramp up over the first slots then plateau (warm pipeline).
        timeline = []
        for slot in range(250):
            ramp = min(1.0, slot / 50.0)
            buffers = ramp * clients * 64 * 2.5e6
            timeline.append(base + buffers)
        series[label] = np.array(timeline)
    return series


def test_fig17a_parallelism_redundancy(benchmark, navit_catalog):
    ratios = benchmark(_parallelism_grid, navit_catalog)

    report = MetricReport(
        title="Fig. 17a - memory ratio (shared constructors / per-rank loaders) at 512 GPUs",
        columns=["CP \\ PP"] + [str(pp) for pp in (1, 2, 4, 8, 16)],
    )
    for cp in (1, 2, 4, 8, 16):
        report.add_row(cp, *[round(ratios[(cp, pp)], 3) for pp in (1, 2, 4, 8, 16)])
    emit(report)

    # Savings grow as CP and PP increase (more per-rank redundancy removed).
    assert ratios[(16, 16)] < ratios[(1, 1)]
    assert ratios[(1, 16)] < ratios[(1, 1)]
    assert ratios[(16, 1)] < ratios[(1, 1)]
    assert ratios[(16, 16)] < 0.25
    # Monotone (weakly) along each axis from the origin.
    assert ratios[(1, 2)] <= ratios[(1, 1)] * 1.05
    assert ratios[(2, 1)] <= ratios[(1, 1)] * 1.05


def test_fig17b_source_redundancy(benchmark):
    series = benchmark(_source_redundancy_series)
    threshold = 1.76 * TIB

    report = MetricReport(
        title="Fig. 17b - host memory over time (source partitioning)",
        columns=["configuration", "peak (GiB)", "steady (GiB)", "under 1.76 TiB threshold"],
    )
    for label, values in series.items():
        report.add_row(
            label,
            round(bytes_to_gib(values.max()), 1),
            round(bytes_to_gib(values[-1]), 1),
            bool(values.max() < threshold),
        )
    emit(report)

    # Partitioning sources across DP ranks (SP=2) roughly halves the footprint
    # of the 306-source job and brings it under the node threshold.
    assert series["SRC=306, SP=2"].max() < 0.7 * series["SRC=306"].max()
    assert series["SRC=306, SP=2"].max() < threshold
    assert series["SRC=100"].max() < series["SRC=306"].max()
