"""Shared fixtures and helpers for the benchmark harness.

Every module regenerates one table or figure from the paper's evaluation
section: it prints the corresponding rows/series (so they can be compared to
the published plot) and asserts the qualitative shape that the paper reports.
Run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.place_tree import ClientPlaceTree
from repro.data.synthetic import build_source_catalog, coyo700m_like_spec, navit_like_spec
from repro.metrics.report import MetricReport
from repro.parallelism.mesh import DeviceMesh
from repro.storage.filesystem import SimulatedFileSystem


def pytest_collection_modifyitems(config, items):
    """Mark every benchmark test ``slow`` so ``-m "not slow"`` skips the suite.

    The hook receives the whole session's items, so restrict the marker to
    tests that live in this directory.
    """
    benchmarks_dir = str(Path(__file__).parent)
    for item in items:
        if str(item.fspath).startswith(benchmarks_dir):
            item.add_marker(pytest.mark.slow)


def emit(report: MetricReport) -> None:
    """Print a report under the benchmark output (visible with -s or on failure)."""
    print()
    print(report.to_text())


#: Repository root — BENCH_*.json perf artifacts are written here so the
#: perf trajectory is tracked across PRs (and uploaded by the CI matrix leg).
REPO_ROOT = Path(__file__).resolve().parent.parent


def write_bench_json(figure: str, section: str, payload: object) -> Path:
    """Merge ``payload`` under ``section`` into ``BENCH_<figure>.json``.

    Each benchmark test owns one section of its figure's artifact, so tests
    can run independently (e.g. one prefetch-depth leg of the CI matrix)
    without clobbering each other's numbers.
    """
    import json

    path = REPO_ROOT / f"BENCH_{figure}.json"
    document: dict[str, object] = {}
    if path.exists():
        try:
            document = json.loads(path.read_text())
        except json.JSONDecodeError:
            document = {}
    document[section] = payload
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


@pytest.fixture(scope="session")
def filesystem() -> SimulatedFileSystem:
    return SimulatedFileSystem()


@pytest.fixture(scope="session")
def coyo_catalog(filesystem):
    """A coyo700m-like group: 5 sources of short-caption image-text pairs."""
    return build_source_catalog(
        coyo700m_like_spec(num_sources=5, samples_per_source=400, seed=0), filesystem
    )


@pytest.fixture(scope="session")
def navit_catalog(filesystem):
    """A navit_data-like group: many heterogeneous multimodal sources."""
    return build_source_catalog(
        navit_like_spec(num_sources=60, samples_per_source=32, seed=0), filesystem
    )


@pytest.fixture(scope="session")
def mesh_288() -> DeviceMesh:
    """TP=4, PP=8, DP=9 — the paper's 288-GPU configuration."""
    return DeviceMesh(pp=8, dp=9, cp=1, tp=4, gpus_per_node=16)


@pytest.fixture(scope="session")
def mesh_576() -> DeviceMesh:
    """TP=4, PP=4, CP=4, DP=9 — the paper's 576-GPU configuration."""
    return DeviceMesh(pp=4, dp=9, cp=4, tp=4, gpus_per_node=16)


def sample_batch(catalog, filesystem, count, seed=0):
    """Draw `count` distinct sample metadata records round-robin across a catalog.

    The ``seed`` rotates each source's read cursor so different benchmark steps
    see different (but deterministic) batches.  Raises if the catalog does not
    hold enough distinct samples.
    """
    from repro.data.sources import SourceCursor

    total = catalog.total_samples()
    if count > total:
        raise ValueError(f"requested {count} samples but the catalog only holds {total}")
    start_fraction = (seed % 97) / 97.0
    cursors = [
        SourceCursor(source, filesystem, start_fraction=start_fraction) for source in catalog
    ]
    remaining = {source.name: source.num_samples for source in catalog}
    samples = []
    index = 0
    while len(samples) < count:
        cursor = cursors[index % len(cursors)]
        if remaining[cursor.source.name] > 0:
            samples.append(cursor.next_metadata())
            remaining[cursor.source.name] -= 1
        index += 1
    return samples


def tree_for(mesh: DeviceMesh) -> ClientPlaceTree:
    return ClientPlaceTree(mesh)
