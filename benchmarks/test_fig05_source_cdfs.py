"""Fig. 5 — CDFs of per-source file-access-state memory and transformation latency.

The paper samples 100 production sources and shows both distributions are
long-tailed: a minority of sources hold most of the file-state memory and the
slowest transformation pipelines are orders of magnitude above the median.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import estimate_transform_pipeline_latency
from repro.data.sources import SourceCursor
from repro.data.synthetic import build_source_catalog, navit_like_spec
from repro.metrics.memory import MemoryLedger
from repro.metrics.report import MetricReport
from repro.storage.filesystem import SimulatedFileSystem
from repro.storage.reader import ColumnarReader
from repro.utils.units import bytes_to_mib

from .conftest import emit

NUM_SOURCES = 100


def _per_source_profiles():
    filesystem = SimulatedFileSystem()
    catalog = build_source_catalog(
        navit_like_spec(num_sources=NUM_SOURCES, samples_per_source=32, seed=5), filesystem
    )
    memory_bytes = []
    for source in catalog:
        ledger = MemoryLedger()
        readers = [ColumnarReader(filesystem, path, ledger) for path in source.paths]
        for reader in readers:
            reader.open()
        # Touch one row per file so a row-group buffer is resident, as a real
        # reader would keep while iterating.
        cursor = SourceCursor(source, filesystem)
        cursor.next_metadata()
        for reader in readers:
            reader.read_row(0)
        memory_bytes.append(ledger.total_bytes())
        for reader in readers:
            reader.close()
    latencies = list(estimate_transform_pipeline_latency(catalog).values())
    return np.array(memory_bytes, dtype=float), np.array(latencies, dtype=float)


def test_fig5_source_cdfs(benchmark):
    memory_bytes, latencies = benchmark(_per_source_profiles)

    report = MetricReport(
        title="Fig. 5 - per-source file state memory and transform latency percentiles",
        columns=["metric", "p10", "p50", "p90", "p99", "max"],
    )
    report.add_row(
        "file state (MiB)",
        *[round(bytes_to_mib(np.percentile(memory_bytes, p)), 3) for p in (10, 50, 90, 99)],
        round(bytes_to_mib(memory_bytes.max()), 3),
    )
    report.add_row(
        "transform latency (ms/sample)",
        *[round(1e3 * np.percentile(latencies, p), 3) for p in (10, 50, 90, 99)],
        round(1e3 * latencies.max(), 3),
    )
    emit(report)

    assert len(memory_bytes) == NUM_SOURCES
    # Long-tailed latency: the p99 source is far above the median (Fig. 5b).
    assert np.percentile(latencies, 99) > 5 * np.percentile(latencies, 50)
    # Memory per open source is non-trivial and varies across sources.
    assert memory_bytes.min() > 0
    assert memory_bytes.max() > memory_bytes.min()
