"""Fig. 3 — computational imbalance across microbatches under naive batching.

Reproduces the 8-GPU VLM trial: encoders distributed with EDP=8 across all
GPUs, backbone with DP=4 / TP=2, 4 microbatches per rank, samples assigned in
arrival order.  The image-FLOPs and token-FLOPs heatmaps should show large
max/min ratios (the paper observes 3.2x and 6.9x).
"""

from __future__ import annotations

import numpy as np

from repro.metrics.report import MetricReport
from repro.training.flops import flops_imbalance_matrix, imbalance_ratio
from repro.training.models import llama_12b, vit_2b

from .conftest import emit, sample_batch

NUM_MICROBATCHES = 4
DP = 4
EDP = 8
SAMPLES_PER_MICROBATCH = 4


def _naive_assignments(samples, num_groups, num_microbatches, per_microbatch):
    assignments = []
    cursor = 0
    for _ in range(num_groups):
        row = []
        for _ in range(num_microbatches):
            row.append(samples[cursor : cursor + per_microbatch])
            cursor += per_microbatch
        assignments.append(row)
    return assignments


def test_fig3_flops_heatmaps(benchmark, navit_catalog, filesystem):
    def build():
        total = DP * NUM_MICROBATCHES * SAMPLES_PER_MICROBATCH
        samples = sample_batch(navit_catalog, filesystem, total, seed=3)
        backbone_assignments = _naive_assignments(samples, DP, NUM_MICROBATCHES, SAMPLES_PER_MICROBATCH)
        # Encoder EDP: the same samples spread over 8 encoder ranks, two per DP group.
        encoder_assignments = []
        for dp_row in backbone_assignments:
            for half in range(2):
                encoder_assignments.append(
                    [[s for i, s in enumerate(mb) if i % 2 == half and s.image_tokens > 0] for mb in dp_row]
                )
        token_matrix = flops_imbalance_matrix(backbone_assignments, None, llama_12b(), which="backbone")
        image_matrix = flops_imbalance_matrix(encoder_assignments, vit_2b(), llama_12b(), which="encoder")
        return token_matrix, image_matrix

    token_matrix, image_matrix = benchmark(build)

    report = MetricReport(
        title="Fig. 3 - FLOPs imbalance (max/min ratio across rank x microbatch cells)",
        columns=["heatmap", "shape", "max/min ratio", "mean FLOPs", "max FLOPs"],
    )
    for name, matrix in (("image (EDP=8)", image_matrix), ("token (DP=4)", token_matrix)):
        report.add_row(
            name,
            f"{matrix.shape[0]}x{matrix.shape[1]}",
            round(imbalance_ratio(matrix), 2),
            float(np.mean(matrix[matrix > 0])) if (matrix > 0).any() else 0.0,
            float(matrix.max()),
        )
    emit(report)

    # Paper observes 3.2x (image) and 6.9x (token) max/min spreads; the shape
    # to preserve is "well above 2x imbalance under arrival-order batching"
    # for both the encoder and the fused-token heatmaps.
    assert imbalance_ratio(image_matrix) > 2.0
    assert imbalance_ratio(token_matrix) > 2.0
