"""Fig. 14 — case study: VLM pre-training timeline with and without balancing.

The paper profiles a Llama-12B + ViT-2B job on navit_data (hybrid parallelism
with CP and TP) and shows the per-microbatch timeline: the baseline suffers a
highly variable encoder stage (2.6s vs 6.4s microbatches) and a 37.2s
iteration, backbone-only balancing lands at 28.6s, and MegaScale-Data's hybrid
balancing at 15.9s (2.34x).  This bench regenerates the three timelines and
checks the ordering and the shrinking encoder-stage variance.
"""

from __future__ import annotations

import numpy as np

from repro.core.place_tree import ClientPlaceTree
from repro.core.strategies import StrategyConfig, make_strategy
from repro.metrics.report import MetricReport
from repro.parallelism.mesh import DeviceMesh
from repro.training.models import VLMConfig, get_model
from repro.training.simulator import TrainingSimulator

from .conftest import emit, sample_batch

MESH = DeviceMesh(pp=3, dp=2, cp=2, tp=2, gpus_per_node=16)
NUM_MICROBATCHES = 4
SAMPLES_PER_DP = 32


def _simulate(strategy_name, samples, model):
    tree = ClientPlaceTree(MESH)
    strategy = make_strategy(strategy_name, StrategyConfig(num_microbatches=NUM_MICROBATCHES))
    plan = strategy({"navit": samples}, tree, step=0, seed=0)
    backbone = []
    for bucket in range(plan.module.num_buckets):
        row = [list(a.samples) for a in plan.module.bucket_assignments(bucket)]
        while len(row) < NUM_MICROBATCHES:
            row.append([])
        backbone.append(row)
    encoder = None
    if "encoder" in plan.subplan:
        module = plan.subplan["encoder"].module
        encoder = []
        for bucket in range(module.num_buckets):
            row = [list(a.samples) for a in module.bucket_assignments(bucket)]
            while len(row) < NUM_MICROBATCHES:
                row.append([])
            encoder.append(row)
    simulator = TrainingSimulator(model, MESH)
    return simulator.simulate_iteration(backbone, encoder)


def test_fig14_case_study_timeline(benchmark, navit_catalog, filesystem):
    model = VLMConfig(encoder=get_model("ViT-2B"), backbone=get_model("Llama-12B"))
    samples = sample_batch(navit_catalog, filesystem, SAMPLES_PER_DP * MESH.size("DP"), seed=14)

    results = benchmark(
        lambda: {
            name: _simulate(name, samples, model)
            for name in ("vanilla", "backbone_balance", "hybrid")
        }
    )

    report = MetricReport(
        title="Fig. 14 - case study iteration timeline (Llama-12B + ViT-2B, navit)",
        columns=["configuration", "iteration (s)", "encoder stage (s)", "all-to-all (s)",
                 "backbone stage (s)", "DP straggler gap (s)", "speedup vs baseline"],
    )
    baseline_time = results["vanilla"].iteration_time_s
    for name, label in (
        ("vanilla", "Baseline"),
        ("backbone_balance", "Backbone balance"),
        ("hybrid", "MegaScale-Data (hybrid)"),
    ):
        result = results[name]
        report.add_row(
            label,
            round(result.iteration_time_s, 2),
            round(result.encoder_time_s, 2),
            round(result.alltoall_time_s, 2),
            round(result.backbone_time_s, 2),
            round(result.bubble_time_s, 2),
            round(baseline_time / result.iteration_time_s, 2),
        )
    emit(report)

    vanilla = results["vanilla"]
    backbone = results["backbone_balance"]
    hybrid = results["hybrid"]
    # Ordering: hybrid is the clear winner (paper: 15.9s vs 28.6s vs 37.2s).
    # Backbone-only balancing can even regress the encoder stage (its blind
    # spot and the motivation for hybrid balancing), so it is only required to
    # stay in the baseline's neighbourhood.
    assert hybrid.iteration_time_s <= backbone.iteration_time_s * 1.02
    assert backbone.iteration_time_s <= vanilla.iteration_time_s * 1.2
    assert vanilla.iteration_time_s / hybrid.iteration_time_s > 1.1
    # The hybrid balancer evens out the encoder stage, so its per-microbatch
    # encoder times show less spread than the baseline's.
    def encoder_spread(result):
        durations = [e.metadata["encoder"] for e in result.timeline.events(component="dp0")]
        return float(np.max(durations) - np.min(durations)) if durations else 0.0

    assert encoder_spread(hybrid) <= encoder_spread(vanilla) * 1.25
    # The DP straggler gap shrinks under balancing.
    assert hybrid.bubble_time_s <= vanilla.bubble_time_s
