"""Fig. 27 (ext): survivability — a full fault storm vs the degraded-mode policies.

The chaos engine drives a declarative storm containing every fault class of
Sec. 6.1 — a node crash (planner + canonical loaders), a loader straggler
window, a control-plane (GCS) blip, a checkpoint-store outage and a source
blackout long enough to black out several planning rounds — against the same
job on both execution backends (virtual event clock and real thread lanes)
under both degraded-mode policies:

- ``strict``: fail-stop semantics.  Every fault is healed (crashes restart
  from differential checkpoints, alive-but-dark actors are waited out), the
  run completes every step, and the delivered batches are byte-identical to
  a fault-free baseline — chaos may cost time, never data.
- ``renormalize``: availability-first.  A blacked-out source is dropped from
  the mixture (weights renormalized over the survivors) and its missed
  quota is repaid by the deterministic catch-up schedule once it returns;
  the run completes every step and the *cumulative* per-source sample
  counts equal the fault-free baseline exactly (quota-exactness), though
  individual steps differ.

Both properties are gated per backend; the storm must actually fire every
fault kind on the virtual backend (instants are deterministic there).  The
survivable wall-clock overhead of the storm is recorded and bounded.

Writes ``BENCH_fig27_chaos.json``:

- the committed ``chaos`` section (full backend × mode matrix), and
- a fresh ``smoke`` section when ``BENCH_CHAOS_SMOKE=1`` (the CI
  ``chaos-bench`` leg), gated by ``benchmarks/check_chaos_regression.py``.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chaos import ChaosEngine, FaultEvent, FaultPlan
from repro.core.checkpoint import InMemoryCheckpointStore
from repro.core.framework import MegaScaleData, TrainingJobSpec
from repro.metrics.report import MetricReport

from .conftest import emit, write_bench_json

#: Smoke mode only selects which artifact section is written (the CI leg's
#: fresh rows vs the committed baseline); the workload itself is identical.
SMOKE = os.environ.get("BENCH_CHAOS_SMOKE") == "1"
NUM_STEPS = 10
PREFETCH_DEPTH = 1
MODES = ("strict", "renormalize")
#: Real seconds the scaled wallclock runs should take each.
REAL_BUDGET_S = 2.0
#: Survivability bound: virtual wall time under the storm may not exceed
#: this multiple of the fault-free baseline (waits and replays cost time,
#: but a survivable storm must not stall the trainer unboundedly).
STALL_BOUND = 2.0


def make_job(**overrides) -> TrainingJobSpec:
    return TrainingJobSpec(
        pp=1, dp=2, cp=1, tp=1, encoder=None, strategy="backbone_balance",
        samples_per_dp_step=8, num_microbatches=2, num_sources=3,
        samples_per_source=128, seed=5, prefetch_depth=PREFETCH_DEPTH,
        enable_shadow_loaders=True, **overrides,
    )


def delivery_signature(result):
    return {
        rank: [
            (piece.rank, piece.microbatch_index, piece.token_count, piece.payload_bytes)
            for piece in delivery.slices
        ]
        for rank, delivery in sorted(result.deliveries.items())
    }


def build_storm(base_wall_s: float) -> FaultPlan:
    """Every Sec. 6.1 fault class, scheduled at fractions of the baseline wall.

    The blackout window spans ~1.5 steps so it reliably coincides with
    loader calls (windowed faults only bite calls that land inside them)
    and sits early in the run, leaving renormalize mode's quota catch-up
    several healthy steps to repay the debt inside the measured window;
    the gcs blip spans >1 step so a planner call must land inside it; the
    node crash takes out ``cpu-pod-0`` — the planner's and the first
    canonical loaders' preferred placement — so recovery exercises the
    coordinator restart path, not just loader failover.
    """
    step_s = base_wall_s / NUM_STEPS
    return FaultPlan([
        FaultEvent("node_crash", 0.10 * base_wall_s, target="cpu-pod-0"),
        FaultEvent(
            "source_blackout", 0.22 * base_wall_s, target="navit_data/src001",
            duration_s=1.5 * step_s,
        ),
        FaultEvent(
            "straggler", 0.50 * base_wall_s, target="source_loader",
            duration_s=1.0 * step_s, factor=4.0,
        ),
        FaultEvent("gcs_blip", 0.62 * base_wall_s, target="planner", duration_s=1.2 * step_s),
        FaultEvent("store_outage", 0.80 * base_wall_s, duration_s=1.2 * step_s),
    ])


def run_case(job: TrainingJobSpec, storm: FaultPlan | None = None):
    """Run NUM_STEPS; returns (signatures, demand counts, wall, chaos/ft summaries)."""
    engine = None
    store = InMemoryCheckpointStore()
    if storm is not None:
        engine = ChaosEngine(storm)
        store = engine.wrap_store(store)
    fw = MegaScaleData.deploy(job, checkpoint_store=store)
    try:
        if engine is not None:
            engine.attach(fw.system)
        signatures = []
        for _ in range(NUM_STEPS):
            result = fw.run_step(simulate=True)
            signatures.append(delivery_signature(result))
        counts: dict[str, int] = {}
        for plan in fw.planner_handle.instance().plans_since(-1):
            if plan.step < NUM_STEPS:
                for source, ids in plan.source_demands.items():
                    counts[source] = counts.get(source, 0) + len(ids)
        wall = fw.virtual_time_s()
        fired = engine.summary()["counts"] if engine is not None else {}
        recoveries = fw.fault_manager.recovery_summary()
        return signatures, counts, wall, fired, recoveries
    finally:
        fw.shutdown()


def _matrix():
    # Size the wallclock time scale and the storm instants off one virtual
    # probe: the storm's fractions-of-wall instants then land identically on
    # both backends (the wallclock engine reports virtual units too).
    _, _, probe_wall, _, _ = run_case(make_job(degraded_mode="strict"))
    time_scale = REAL_BUDGET_S / max(1e-9, probe_wall)
    storm_template = build_storm(probe_wall)

    rows = []
    for backend in ("virtual", "wallclock"):
        backend_kw = (
            {"backend": "wallclock", "wallclock_time_scale": time_scale}
            if backend == "wallclock"
            else {}
        )
        for mode in MODES:
            job_kw = dict(degraded_mode=mode, **backend_kw)
            base_sigs, base_counts, base_wall, _, _ = run_case(make_job(**job_kw))
            try:
                sigs, counts, wall, fired, recoveries = run_case(
                    make_job(**job_kw), storm=FaultPlan(list(storm_template.events))
                )
            except Exception as exc:
                raise AssertionError(
                    f"storm run did not survive on {backend}/{mode}: {exc!r}"
                ) from exc
            rows.append(
                {
                    "backend": backend,
                    "mode": mode,
                    "steps_completed": len(sigs),
                    "byte_identical": sigs == base_sigs,
                    "quota_exact": counts == base_counts,
                    "baseline_wall_s": base_wall,
                    "chaos_wall_s": wall,
                    "wall_ratio": wall / base_wall if base_wall > 0 else float("inf"),
                    "fired": fired,
                    "recoveries": recoveries["by_kind"],
                    "per_source_samples": counts,
                }
            )
    return time_scale, storm_template.describe(), rows


def test_fig27_chaos_storm_survivability(benchmark):
    """Full fault storm: zero lost steps, strict byte-identity, quota-exact catch-up."""
    time_scale, storm, rows = benchmark.pedantic(_matrix, rounds=1, iterations=1)

    report = MetricReport(
        title="Fig. 27 (ext) - chaos storm survivability by backend and degraded mode",
        columns=["backend", "mode", "steps", "byte-identical", "quota-exact",
                 "wall ratio", "faults fired"],
    )
    for row in rows:
        report.add_row(
            row["backend"], row["mode"], f"{row['steps_completed']}/{NUM_STEPS}",
            row["byte_identical"], row["quota_exact"],
            round(row["wall_ratio"], 3), sum(row["fired"].values()),
        )
    emit(report)

    payload = {
        "steps": NUM_STEPS,
        "prefetch_depth": PREFETCH_DEPTH,
        "time_scale": time_scale,
        "storm": storm,
        "stall_bound": STALL_BOUND,
        "rows": rows,
    }
    write_bench_json("fig27_chaos", "smoke" if SMOKE else "chaos", payload)

    for row in rows:
        label = f"{row['backend']}/{row['mode']}"
        # Survivability: every step completed despite the storm.
        assert row["steps_completed"] == NUM_STEPS, label
        # Quota-exactness holds in both modes: strict delivers the same
        # bytes, renormalize repays the blackout debt sample-exactly.
        assert row["quota_exact"], label
        if row["mode"] == "strict":
            assert row["byte_identical"], label
        if row["backend"] == "virtual":
            # Deterministic instants: every fault class must actually fire
            # (windowed faults only count when a call lands inside them).
            assert set(row["fired"]) == {
                "node_crash", "straggler", "gcs_blip", "store_outage", "source_blackout"
            }, (label, row["fired"])
            # Bounded stall: waits and replays may stretch the run, but the
            # storm must not stall the trainer unboundedly.
            assert row["wall_ratio"] <= STALL_BOUND, (label, row["wall_ratio"])


# -- property: random storms never lose data ------------------------------------------------

PROPERTY_STEPS = 10
#: Fraction of the run the storm may span.  Random windows end by
#: ~0.97x the horizon, so this leaves a quiescent tail of several healthy
#: steps in which renormalize mode's deterministic catch-up repays any
#: blackout debt before the cumulative quotas are compared.
PROPERTY_STORM_SPAN = 0.6
#: Fault-free references per mode (sigs, counts, wall, target pools),
#: computed once and shared across hypothesis examples.
_property_baselines: dict[str, tuple[list, dict, float, dict]] = {}


def _run_property(mode: str, storm: FaultPlan | None = None):
    """Run PROPERTY_STEPS under a storm (None = fault-free reference)."""
    store = InMemoryCheckpointStore()
    engine = None
    if storm is not None:
        engine = ChaosEngine(storm)
        store = engine.wrap_store(store)
    fw = MegaScaleData.deploy(make_job(degraded_mode=mode), checkpoint_store=store)
    try:
        if engine is not None:
            engine.attach(fw.system)
        signatures = []
        for _ in range(PROPERTY_STEPS):
            result = fw.run_step(simulate=True)
            signatures.append(delivery_signature(result))
        counts: dict[str, int] = {}
        for plan in fw.planner_handle.instance().plans_since(-1):
            if plan.step < PROPERTY_STEPS:
                for source, ids in plan.source_demands.items():
                    counts[source] = counts.get(source, 0) + len(ids)
        pools = {
            "actors": [fw.planner_handle.name, fw.loader_handles[0].name],
            "sources": [
                handle.instance().source.name for handle in fw.loader_handles
            ],
        }
        return signatures, counts, fw.virtual_time_s(), pools
    finally:
        fw.shutdown()


def _assert_seeded_storm_survives(seed: int, mode: str) -> None:
    """Run one seeded storm and assert the survivability contract."""
    if mode not in _property_baselines:
        _property_baselines[mode] = _run_property(mode)
    base_sigs, base_counts, base_wall, pools = _property_baselines[mode]
    storm = FaultPlan.random_storm(
        seed,
        horizon_s=PROPERTY_STORM_SPAN * base_wall,
        actors=pools["actors"],
        nodes=["cpu-pod-0"],
        sources=pools["sources"],
        roles=["source_loader"],
        num_events=4,
    )
    sigs, counts, _, _ = _run_property(mode, storm)
    assert len(sigs) == PROPERTY_STEPS
    assert counts == base_counts
    if mode == "strict":
        assert sigs == base_sigs


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(seed=st.integers(min_value=0, max_value=63), mode=st.sampled_from(MODES))
def test_fig27_random_storms_never_lose_data(seed, mode):
    """Any seeded storm: all steps complete and cumulative quotas are exact.

    Strict mode additionally guarantees byte-identical deliveries — chaos
    may cost wall time, never samples.  Windowed faults in a random storm
    may or may not coincide with calls (lazy activation), so the property
    asserts outcomes, not that every drawn fault fired.  The storm is
    confined to the first ``PROPERTY_STORM_SPAN`` of the run: quota
    exactness is a statement about the post-storm steady state, so the
    catch-up schedule must be given healthy steps to repay the debt.
    """
    _assert_seeded_storm_survives(seed, mode)


#: Pinned storm seeds replayed verbatim by the CI leg.  The hypothesis
#: property above *samples* the seed space (different examples per run);
#: this matrix pins a fixed slice of it so a flaky recovery path fails
#: the same way on every run instead of intermittently.  Seeds 0 and 55
#: are former falsifiers (catch-up starvation and a loader that died
#: mid-outage, respectively); 23 is an arbitrary third draw.
STORM_MATRIX_SEEDS = (0, 23, 55)


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("seed", STORM_MATRIX_SEEDS)
def test_fig27_seeded_storm_matrix(seed, mode):
    """Deterministic 3-storm matrix: pinned seeds, both degraded modes."""
    _assert_seeded_storm_survives(seed, mode)
